// Kernel-ownership annotations for itcfs-lint's kernel-ownership rule.
//
// The discrete-event kernel (src/sim/kernel.h) owns a domain of state: the
// event heap, the virtual clock, the trace ring, and — through the
// activities it schedules — the functional state those activities mutate
// (resources, network partitions, server volumes). Under the sharded
// runtime (sim::KernelGroup, SchedulerMode::kSharded) there is one kernel
// per cluster, each on its own OS thread, and a touch from outside the
// owning shard is a data race, not just a style violation.
//
// These macros make the domain machine-checkable. They expand to nothing —
// the compiler never sees them — but itcfs-lint's symbol index
// (tools/lint/symbols.h) picks them up and its kernel-ownership rule
// enforces the fence:
//
//   ITC_OWNED_BY_KERNEL    on a member declaration. The member belongs to
//                          the owning kernel's domain; only methods of the
//                          class reachable (via the conservative call graph)
//                          from an ENTRY or QUIESCENT function may touch it.
//
//   ITC_OWNED_BY_SHARD     on a member declaration. Strictly stronger than
//                          ITC_OWNED_BY_KERNEL: the member belongs to ONE
//                          shard of the kernel group — the shard that owns
//                          the enclosing object's cluster — and may only be
//                          touched by an activity currently hosted there
//                          (or while the whole group is quiescent). Methods
//                          reaching such a member must be reachable from an
//                          ENTRY or QUIESCENT function of the class, or
//                          carry the ITC_SHARD_FOREIGN waiver below.
//
//   ITC_KERNEL_ENTRY       on a function declaration or definition. An
//                          entry point of the kernel domain: the event loop
//                          itself, or a call an activity legally makes while
//                          the kernel is running (sim::Charge, Kernel::
//                          WaitUntil, an RPC handler bound by BindOps, ...).
//                          Under a kernel group an ENTRY function runs on
//                          whichever shard hosts the calling activity; code
//                          that touches ITC_OWNED_BY_SHARD state must have
//                          migrated there first (net::Network::Transfer does
//                          this as a side effect of crossing the backbone).
//
//   ITC_KERNEL_QUIESCENT   on a function declaration or definition. Legal
//                          only while the owning kernel — all shards of the
//                          group — is idle: setup (Spawn, EnableTrace),
//                          post-run accessors (trace, utilization), and
//                          orchestration between runs (Partition,
//                          RestartServer, SimulateCrash, ...). Quiescent
//                          functions may touch any shard's state; the
//                          runtime check is ITC_CHECK(sim::Kernel::Current()
//                          == nullptr) at the top of the function.
//
//   ITC_SHARD_FOREIGN      on a function declaration or definition. An
//                          acknowledged cross-shard touch: the function is
//                          known to reach state its calling shard does not
//                          own (e.g. a client-side destructor tearing down
//                          server-side connection state) and is exempted
//                          from the owned-by-shard fence. A waiver, not a
//                          blessing — each one marks documented debt that
//                          must only run quiescently or on the owning
//                          shard; the lint rule accepts an owned-by-shard
//                          touch inside a SHARD_FOREIGN function and flags
//                          one anywhere else outside ENTRY/QUIESCENT reach.
//
// The rule checks methods of the annotated member's own class, so the fence
// is necessary, not sufficient — a reference smuggled out of the class
// escapes it. That is the same deal ITC_CHECK offers: a cheap invariant
// that converts the common mistake into a build failure.

#ifndef ITC_COMMON_OWNERSHIP_H_
#define ITC_COMMON_OWNERSHIP_H_

#define ITC_OWNED_BY_KERNEL
#define ITC_OWNED_BY_SHARD
#define ITC_KERNEL_ENTRY
#define ITC_KERNEL_QUIESCENT
#define ITC_SHARD_FOREIGN

#endif  // ITC_COMMON_OWNERSHIP_H_
