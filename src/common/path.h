// Slash-separated path utilities shared by the local file system (unixfs),
// Venus, and Vice. Paths are Unix-style: absolute paths begin with '/',
// components are separated by single slashes, "." and ".." are resolved by
// the file-system layers (not here).

#ifndef SRC_COMMON_PATH_H_
#define SRC_COMMON_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace itc {

// Splits "/a/b/c" or "a/b/c" into {"a","b","c"}. Empty components from
// duplicate slashes are dropped. "/" splits to {}.
std::vector<std::string> SplitPath(std::string_view path);

// Joins components with '/' and a leading '/': {"a","b"} -> "/a/b"; {} -> "/".
std::string JoinPath(const std::vector<std::string>& components);

// Concatenates two paths with exactly one separating slash.
std::string PathConcat(std::string_view base, std::string_view rest);

// True if `path` equals `prefix` or is beneath it ("/a/b" is under "/a").
bool PathHasPrefix(std::string_view path, std::string_view prefix);

// "/a/b/c" -> "c"; "/" -> "".
std::string_view Basename(std::string_view path);

// "/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/".
std::string_view Dirname(std::string_view path);

// True for names legal as a single directory entry: nonempty, no '/',
// not "." or "..", and at most kMaxNameLength bytes.
bool IsValidName(std::string_view name);

inline constexpr size_t kMaxNameLength = 255;
inline constexpr int kMaxSymlinkDepth = 16;

}  // namespace itc

#endif  // SRC_COMMON_PATH_H_
