// Deterministic pseudo-random number generation.
//
// All randomness in workloads and tests flows through Rng seeded explicitly,
// so every experiment in bench/ is exactly reproducible. The core generator
// is splitmix64 feeding xoshiro256**.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace itc {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  // Uniform over all 64-bit values.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  // Fork a child generator with an independent stream; deterministic in
  // (parent seed, salt). Does not disturb this generator's own stream.
  Rng Fork(uint64_t salt) const { return Rng(s_[0] ^ (salt * 0x9e3779b97f4a7c15ull + 1)); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace itc

#endif  // SRC_COMMON_RNG_H_
