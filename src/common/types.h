// Fundamental identifier types shared across the itcfs library.

#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace itc {

// Principals in the protection domain (src/protection). Users are humans;
// groups are recursive collections of users and groups (Grapevine-style).
using UserId = uint32_t;
using GroupId = uint32_t;

// A network node: either a Virtue workstation or a Vice cluster server.
using NodeId = uint32_t;
// A Vice cluster server. Servers are also network nodes; ServerId indexes the
// registry of servers, NodeId addresses the node on the (simulated) network.
using ServerId = uint32_t;
// A cluster on the campus network (Figure 2-2 of the paper).
using ClusterId = uint32_t;

// Volumes are relocatable subtrees of Vice files (Section 5.3).
using VolumeId = uint32_t;

// Raw byte payloads moved by the RPC layer and stored by the file systems.
using Bytes = std::vector<uint8_t>;

// Simulated time, in microseconds. All timing in the library is virtual:
// advanced by the cost model in src/sim, never by the host clock, so every
// run is deterministic.
using SimTime = int64_t;

constexpr SimTime Micros(int64_t n) { return n; }
constexpr SimTime Millis(int64_t n) { return n * 1000; }
constexpr SimTime Seconds(int64_t n) { return n * 1000 * 1000; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

constexpr NodeId kInvalidNode = 0xffffffffu;
constexpr ServerId kInvalidServer = 0xffffffffu;
constexpr VolumeId kInvalidVolume = 0;

// The "anonymous" user: a principal with no authenticated identity. Vice
// grants it only the rights explicitly given to System:AnyUser.
constexpr UserId kAnonymousUser = 0;

inline Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
inline std::string ToString(const Bytes& b) { return std::string(b.begin(), b.end()); }

}  // namespace itc

#endif  // SRC_COMMON_TYPES_H_
