#include "src/unixfs/file_system.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/path.h"

namespace itc::unixfs {

FileSystem::FileSystem() {
  Inode root;
  root.type = FileType::kDirectory;
  root.mode = kDefaultDirMode;
  root.link_count = 1;
  inodes_.emplace(kRootInode, std::move(root));
}

StatInfo FileSystem::MakeStat(InodeNum n, const Inode& inode) const {
  StatInfo s;
  s.inode = n;
  s.type = inode.type;
  s.mode = inode.mode;
  s.link_count = inode.link_count;
  s.size = inode.type == FileType::kRegular ? inode.data.size()
           : inode.type == FileType::kSymlink ? inode.symlink_target.size()
                                              : inode.entries.size();
  s.owner = inode.owner;
  s.mtime = inode.mtime;
  return s;
}

InodeNum FileSystem::AllocInode(FileType type, Mode mode, UserId owner) {
  Inode inode;
  inode.type = type;
  inode.mode = mode;
  inode.owner = owner;
  inode.mtime = now_;
  inode.link_count = 1;
  const InodeNum n = next_inode_++;
  inodes_.emplace(n, std::move(inode));
  return n;
}

void FileSystem::ReleaseData(Inode& inode) {
  total_data_bytes_ -= inode.data.size();
  inode.data = content::Ref();
}

void FileSystem::UnlinkInode(InodeNum n) {
  Inode& inode = Node(n);
  ITC_CHECK(inode.link_count > 0);
  if (--inode.link_count == 0) {
    ReleaseData(inode);
    inodes_.erase(n);
  }
}

Result<InodeNum> FileSystem::Resolve(std::string_view path, bool follow_final_symlink) const {
  return ResolveInternal(path, follow_final_symlink, 0);
}

Result<InodeNum> FileSystem::ResolveInternal(std::string_view path, bool follow_final,
                                             int depth) const {
  if (depth > kMaxSymlinkDepth) return Status::kSymlinkLoop;
  if (path.empty() || path.front() != '/') return Status::kInvalidArgument;

  const std::vector<std::string> components = SplitPath(path);
  std::vector<InodeNum> stack{kRootInode};
  std::vector<std::string> names;  // canonical path of stack.back()

  for (size_t i = 0; i < components.size(); ++i) {
    const std::string& comp = components[i];
    if (comp == ".") continue;
    if (comp == "..") {
      if (stack.size() > 1) {
        stack.pop_back();
        names.pop_back();
      }
      continue;
    }
    if (comp.size() > kMaxNameLength) return Status::kNameTooLong;

    const Inode& dir = Node(stack.back());
    if (dir.type != FileType::kDirectory) return Status::kNotDirectory;
    auto it = dir.entries.find(comp);
    if (it == dir.entries.end()) return Status::kNotFound;
    const InodeNum child = it->second;
    const Inode& child_inode = Node(child);

    const bool is_final = (i + 1 == components.size());
    if (child_inode.type == FileType::kSymlink && (!is_final || follow_final)) {
      // Splice the link target: absolute targets restart from the root,
      // relative targets continue from the current directory.
      std::string rest;
      for (size_t j = i + 1; j < components.size(); ++j) {
        rest += '/';
        rest += components[j];
      }
      std::string new_path;
      if (!child_inode.symlink_target.empty() && child_inode.symlink_target.front() == '/') {
        new_path = child_inode.symlink_target + rest;
      } else {
        new_path = JoinPath(names) + "/" + child_inode.symlink_target + rest;
      }
      return ResolveInternal(new_path, follow_final, depth + 1);
    }
    stack.push_back(child);
    names.push_back(comp);
  }
  return stack.back();
}

Result<FileSystem::ParentRef> FileSystem::ResolveParent(std::string_view path) const {
  if (path.empty() || path.front() != '/') return Status::kInvalidArgument;
  const std::string_view dir = Dirname(path);
  const std::string_view leaf = Basename(path);
  if (!IsValidName(leaf)) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(InodeNum parent, ResolveInternal(dir, /*follow_final=*/true, 0));
  if (Node(parent).type != FileType::kDirectory) return Status::kNotDirectory;
  return ParentRef{parent, std::string(leaf)};
}

Result<StatInfo> FileSystem::Stat(std::string_view path) const {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path, /*follow_final_symlink=*/true));
  return MakeStat(n, Node(n));
}

Result<StatInfo> FileSystem::LStat(std::string_view path) const {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path, /*follow_final_symlink=*/false));
  return MakeStat(n, Node(n));
}

Result<InodeNum> FileSystem::Create(std::string_view path, Mode mode, UserId owner) {
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  Inode& dir = Node(ref.parent);
  if (dir.entries.contains(ref.leaf)) return Status::kAlreadyExists;
  const InodeNum n = AllocInode(FileType::kRegular, mode, owner);
  dir.entries.emplace(ref.leaf, n);
  dir.mtime = now_;
  return n;
}

Status FileSystem::MkDir(std::string_view path, Mode mode, UserId owner) {
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  Inode& dir = Node(ref.parent);
  if (dir.entries.contains(ref.leaf)) return Status::kAlreadyExists;
  const InodeNum n = AllocInode(FileType::kDirectory, mode, owner);
  dir.entries.emplace(ref.leaf, n);
  dir.mtime = now_;
  return Status::kOk;
}

Status FileSystem::MkDirAll(std::string_view path, Mode mode, UserId owner) {
  if (path.empty() || path.front() != '/') return Status::kInvalidArgument;
  const std::vector<std::string> components = SplitPath(path);
  std::string prefix;
  for (const auto& comp : components) {
    prefix += '/';
    prefix += comp;
    auto resolved = Resolve(prefix);
    if (resolved.ok()) {
      if (Node(*resolved).type != FileType::kDirectory) return Status::kNotDirectory;
      continue;
    }
    if (resolved.status() != Status::kNotFound) return resolved.status();
    RETURN_IF_ERROR(MkDir(prefix, mode, owner));
  }
  return Status::kOk;
}

Status FileSystem::Symlink(std::string_view target, std::string_view link_path) {
  if (target.empty()) return Status::kInvalidArgument;
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(link_path));
  Inode& dir = Node(ref.parent);
  if (dir.entries.contains(ref.leaf)) return Status::kAlreadyExists;
  const InodeNum n = AllocInode(FileType::kSymlink, 0777, kAnonymousUser);
  Node(n).symlink_target = std::string(target);
  dir.entries.emplace(ref.leaf, n);
  dir.mtime = now_;
  return Status::kOk;
}

Result<std::string> FileSystem::ReadLink(std::string_view path) const {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path, /*follow_final_symlink=*/false));
  const Inode& inode = Node(n);
  if (inode.type != FileType::kSymlink) return Status::kNotSymlink;
  return inode.symlink_target;
}

Status FileSystem::HardLink(std::string_view existing, std::string_view new_path) {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(existing, /*follow_final_symlink=*/true));
  if (Node(n).type == FileType::kDirectory) return Status::kIsDirectory;
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(new_path));
  Inode& dir = Node(ref.parent);
  if (dir.entries.contains(ref.leaf)) return Status::kAlreadyExists;
  Node(n).link_count += 1;
  dir.entries.emplace(ref.leaf, n);
  dir.mtime = now_;
  return Status::kOk;
}

Status FileSystem::Unlink(std::string_view path) {
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  Inode& dir = Node(ref.parent);
  auto it = dir.entries.find(ref.leaf);
  if (it == dir.entries.end()) return Status::kNotFound;
  if (Node(it->second).type == FileType::kDirectory) return Status::kIsDirectory;
  const InodeNum victim = it->second;
  dir.entries.erase(it);
  dir.mtime = now_;
  UnlinkInode(victim);
  return Status::kOk;
}

Status FileSystem::RmDir(std::string_view path) {
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  Inode& dir = Node(ref.parent);
  auto it = dir.entries.find(ref.leaf);
  if (it == dir.entries.end()) return Status::kNotFound;
  Inode& victim = Node(it->second);
  if (victim.type != FileType::kDirectory) return Status::kNotDirectory;
  if (!victim.entries.empty()) return Status::kNotEmpty;
  const InodeNum n = it->second;
  dir.entries.erase(it);
  dir.mtime = now_;
  UnlinkInode(n);
  return Status::kOk;
}

void FileSystem::RemoveTreeRecursive(InodeNum n) {
  Inode& inode = Node(n);
  if (inode.type == FileType::kDirectory) {
    // Copy the child list: UnlinkInode mutates the map we are iterating.
    std::vector<InodeNum> children;
    children.reserve(inode.entries.size());
    for (const auto& [name, child] : inode.entries) children.push_back(child);
    inode.entries.clear();
    for (InodeNum child : children) RemoveTreeRecursive(child);
  }
  UnlinkInode(n);
}

Status FileSystem::RemoveAll(std::string_view path) {
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParent(path));
  Inode& dir = Node(ref.parent);
  auto it = dir.entries.find(ref.leaf);
  if (it == dir.entries.end()) return Status::kNotFound;
  const InodeNum victim = it->second;
  dir.entries.erase(it);
  dir.mtime = now_;
  RemoveTreeRecursive(victim);
  return Status::kOk;
}

bool FileSystem::IsAncestorOf(InodeNum maybe_ancestor, InodeNum node) const {
  if (maybe_ancestor == node) return true;
  const Inode& inode = Node(maybe_ancestor);
  if (inode.type != FileType::kDirectory) return false;
  for (const auto& [name, child] : inode.entries) {
    if (IsAncestorOf(child, node)) return true;
  }
  return false;
}

Status FileSystem::Rename(std::string_view from, std::string_view to) {
  ASSIGN_OR_RETURN(ParentRef src, ResolveParent(from));
  auto src_it = Node(src.parent).entries.find(src.leaf);
  if (src_it == Node(src.parent).entries.end()) return Status::kNotFound;
  const InodeNum moving = src_it->second;

  ASSIGN_OR_RETURN(ParentRef dst, ResolveParent(to));

  // A directory must not be moved into its own subtree.
  if (Node(moving).type == FileType::kDirectory && IsAncestorOf(moving, dst.parent)) {
    return Status::kInvalidArgument;
  }

  Inode& dst_dir = Node(dst.parent);
  auto dst_it = dst_dir.entries.find(dst.leaf);
  if (dst_it != dst_dir.entries.end()) {
    const InodeNum target = dst_it->second;
    if (target == moving) return Status::kOk;  // rename to itself
    Inode& target_inode = Node(target);
    if (Node(moving).type == FileType::kDirectory) {
      if (target_inode.type != FileType::kDirectory) return Status::kNotDirectory;
      if (!target_inode.entries.empty()) return Status::kNotEmpty;
    } else {
      if (target_inode.type == FileType::kDirectory) return Status::kIsDirectory;
    }
    dst_dir.entries.erase(dst_it);
    UnlinkInode(target);
  }

  Node(src.parent).entries.erase(src.leaf);
  Node(src.parent).mtime = now_;
  Node(dst.parent).entries.emplace(dst.leaf, moving);
  Node(dst.parent).mtime = now_;
  return Status::kOk;
}

Result<std::vector<DirEntry>> FileSystem::ReadDir(std::string_view path) const {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path));
  const Inode& dir = Node(n);
  if (dir.type != FileType::kDirectory) return Status::kNotDirectory;
  std::vector<DirEntry> out;
  out.reserve(dir.entries.size());
  for (const auto& [name, child] : dir.entries) {
    out.push_back(DirEntry{name, child, Node(child).type});
  }
  return out;
}

Result<Bytes> FileSystem::ReadFile(std::string_view path) const {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path));
  return ReadFileByInode(n);
}

Status FileSystem::WriteFile(std::string_view path, const Bytes& data) {
  auto resolved = Resolve(path);
  InodeNum n;
  if (resolved.ok()) {
    n = *resolved;
  } else if (resolved.status() == Status::kNotFound) {
    // open(O_CREAT) semantics for a dangling symlink: create the target,
    // not a "file already exists" error at the link's own name.
    auto link = ReadLink(path);
    if (link.ok()) {
      std::string target = *link;
      if (target.empty() || target.front() != '/') {
        target = PathConcat(Dirname(path), target);
      }
      return WriteFile(target, data);
    }
    ASSIGN_OR_RETURN(n, Create(path));
  } else {
    return resolved.status();
  }
  return WriteFileByInode(n, data);
}

Status FileSystem::Chmod(std::string_view path, Mode mode) {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path));
  Node(n).mode = mode;
  return Status::kOk;
}

Status FileSystem::Chown(std::string_view path, UserId owner) {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path));
  Node(n).owner = owner;
  return Status::kOk;
}

Status FileSystem::SetMTime(std::string_view path, SimTime mtime) {
  ASSIGN_OR_RETURN(InodeNum n, Resolve(path));
  Node(n).mtime = mtime;
  return Status::kOk;
}

Result<StatInfo> FileSystem::StatInode(InodeNum inode) const {
  auto it = inodes_.find(inode);
  if (it == inodes_.end()) return Status::kNotFound;
  return MakeStat(inode, it->second);
}

Result<Bytes> FileSystem::ReadFileByInode(InodeNum inode) const {
  auto it = inodes_.find(inode);
  if (it == inodes_.end()) return Status::kNotFound;
  if (it->second.type == FileType::kDirectory) return Status::kIsDirectory;
  if (it->second.type == FileType::kSymlink) return Status::kInvalidArgument;
  return it->second.data.Materialize();
}

Status FileSystem::WriteFileByInode(InodeNum inode, const Bytes& data) {
  auto it = inodes_.find(inode);
  if (it == inodes_.end()) return Status::kNotFound;
  Inode& node = it->second;
  if (node.type == FileType::kDirectory) return Status::kIsDirectory;
  if (node.type == FileType::kSymlink) return Status::kInvalidArgument;
  if (data.size() > kMaxFileSize) return Status::kFileTooLarge;
  total_data_bytes_ -= node.data.size();
  // Canonicalizing on every write keeps cached copies of synthetic files
  // lazy: fetched bytes collapse back to a ref the moment they come to rest.
  node.data = content::Ref::Canonicalize(data);
  total_data_bytes_ += node.data.size();
  node.mtime = now_;
  return Status::kOk;
}

Result<Bytes> FileSystem::ReadAt(InodeNum inode, uint64_t offset, uint64_t length) const {
  auto it = inodes_.find(inode);
  if (it == inodes_.end()) return Status::kNotFound;
  const Inode& node = it->second;
  if (node.type != FileType::kRegular) return Status::kInvalidArgument;
  return node.data.Slice(offset, length);
}

Status FileSystem::WriteAt(InodeNum inode, uint64_t offset, const Bytes& data) {
  auto it = inodes_.find(inode);
  if (it == inodes_.end()) return Status::kNotFound;
  Inode& node = it->second;
  if (node.type != FileType::kRegular) return Status::kInvalidArgument;
  // Bound before adding: offset comes off the wire in the remote-open
  // baseline, and unchecked offset+size would overflow past the resize.
  if (offset > kMaxFileSize || data.size() > kMaxFileSize - offset) {
    return Status::kFileTooLarge;
  }
  const uint64_t end = offset + data.size();
  total_data_bytes_ -= node.data.size();
  Bytes full = node.data.Materialize();
  if (end > full.size()) full.resize(end, 0);
  std::copy(data.begin(), data.end(), full.begin() + static_cast<ptrdiff_t>(offset));
  node.data = content::Ref::Canonicalize(std::move(full));
  total_data_bytes_ += node.data.size();
  node.mtime = now_;
  return Status::kOk;
}

Status FileSystem::Truncate(InodeNum inode, uint64_t size) {
  auto it = inodes_.find(inode);
  if (it == inodes_.end()) return Status::kNotFound;
  Inode& node = it->second;
  if (node.type != FileType::kRegular) return Status::kInvalidArgument;
  if (size > kMaxFileSize) return Status::kFileTooLarge;
  total_data_bytes_ -= node.data.size();
  if (size <= node.data.gen_len()) {
    // The generative stream is prefix-stable: shrinking within the prefix
    // needs no bytes at all.
    node.data = content::Ref::Generative(node.data.phase(), size);
  } else if (size <= node.data.size()) {
    node.data = content::Ref::Canonicalize(node.data.Slice(0, size));
  } else {
    Bytes full = node.data.Materialize();
    full.resize(size, 0);
    node.data = content::Ref::Canonicalize(std::move(full));
  }
  total_data_bytes_ += node.data.size();
  node.mtime = now_;
  return Status::kOk;
}

uint64_t FileSystem::RetainedContentBytes(std::unordered_set<const void*>* seen) const {
  uint64_t total = 0;
  for (const auto& [n, inode] : inodes_) total += inode.data.RetainedBytes(seen);
  return total;
}

}  // namespace itc::unixfs
