// In-memory hierarchical Unix-like file system.
//
// This substrate plays three roles in the reproduction, mirroring how the
// real system layered on 4.2BSD file systems:
//   * the Root File System of every Virtue workstation (local name space),
//   * cache storage for Venus (cached Vice files live in a cache directory),
//   * backing store for Vice servers (each Vice file is physically a Unix
//     file; in prototype mode a companion ".admin" file carries Vice status,
//     exactly as Section 3.5.2 describes).
//
// Semantics follow Unix: hierarchical directories, hard links to regular
// files, symbolic links with component-wise resolution and a loop limit,
// rename that replaces an existing target, mode bits, link counts, and
// mtimes taken from an externally supplied virtual clock.

#ifndef SRC_UNIXFS_FILE_SYSTEM_H_
#define SRC_UNIXFS_FILE_SYSTEM_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <unordered_set>

#include "src/common/content.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace itc::unixfs {

using InodeNum = uint64_t;
inline constexpr InodeNum kRootInode = 1;

enum class FileType : uint8_t { kRegular, kDirectory, kSymlink };

// Largest file the substrate will hold. Matches the design envelope
// ("files up to a few megabytes", with headroom); also the bound that keeps
// client-supplied offset/size arithmetic from overflowing or exhausting
// memory.
inline constexpr uint64_t kMaxFileSize = 1ull << 30;  // 1 GiB

// Unix permission bits (subset: rwx for user/group/other).
using Mode = uint16_t;
inline constexpr Mode kDefaultFileMode = 0644;
inline constexpr Mode kDefaultDirMode = 0755;

struct StatInfo {
  InodeNum inode = 0;
  FileType type = FileType::kRegular;
  Mode mode = 0;
  uint32_t link_count = 0;
  uint64_t size = 0;
  UserId owner = kAnonymousUser;
  SimTime mtime = 0;
};

struct DirEntry {
  std::string name;
  InodeNum inode;
  FileType type;
};

class FileSystem {
 public:
  FileSystem();

  // The virtual clock used to stamp mtimes. Callers advance it; the file
  // system never advances time itself.
  void set_now(SimTime t) { now_ = t; }
  SimTime now() const { return now_; }

  // --- Path-level operations (absolute, '/'-separated paths) --------------

  // Resolves a path to an inode. When `follow_final_symlink` is false, a
  // trailing symlink component is returned itself rather than followed
  // (lstat-style). Intermediate symlinks are always followed.
  [[nodiscard]] Result<InodeNum> Resolve(std::string_view path, bool follow_final_symlink = true) const;

  [[nodiscard]] Result<StatInfo> Stat(std::string_view path) const;
  [[nodiscard]] Result<StatInfo> LStat(std::string_view path) const;

  [[nodiscard]] Result<InodeNum> Create(std::string_view path, Mode mode = kDefaultFileMode,
                          UserId owner = kAnonymousUser);
  [[nodiscard]] Status MkDir(std::string_view path, Mode mode = kDefaultDirMode,
               UserId owner = kAnonymousUser);
  // Creates every missing directory along `path`.
  [[nodiscard]] Status MkDirAll(std::string_view path, Mode mode = kDefaultDirMode,
                  UserId owner = kAnonymousUser);
  [[nodiscard]] Status Symlink(std::string_view target, std::string_view link_path);
  [[nodiscard]] Result<std::string> ReadLink(std::string_view path) const;
  [[nodiscard]] Status HardLink(std::string_view existing, std::string_view new_path);
  [[nodiscard]] Status Unlink(std::string_view path);
  [[nodiscard]] Status RmDir(std::string_view path);
  // Recursively removes a subtree (not a Unix primitive; used by tests and
  // by Venus cache management).
  [[nodiscard]] Status RemoveAll(std::string_view path);
  [[nodiscard]] Status Rename(std::string_view from, std::string_view to);
  [[nodiscard]] Result<std::vector<DirEntry>> ReadDir(std::string_view path) const;

  // Whole-file convenience I/O (the granularity Vice and Venus move data at).
  [[nodiscard]] Result<Bytes> ReadFile(std::string_view path) const;
  // Creates the file if absent; truncates and replaces contents.
  [[nodiscard]] Status WriteFile(std::string_view path, const Bytes& data);

  [[nodiscard]] Status Chmod(std::string_view path, Mode mode);
  [[nodiscard]] Status Chown(std::string_view path, UserId owner);
  // Sets mtime explicitly (used when Venus installs a cached copy and must
  // preserve the Vice timestamp).
  [[nodiscard]] Status SetMTime(std::string_view path, SimTime mtime);

  // --- Inode-level operations ----------------------------------------------
  // The revised Vice server accesses files "via their low-level identifiers
  // rather than their full Unix pathnames" (Section 3.5.1); these are those
  // low-level entry points.

  [[nodiscard]] Result<StatInfo> StatInode(InodeNum inode) const;
  [[nodiscard]] Result<Bytes> ReadFileByInode(InodeNum inode) const;
  [[nodiscard]] Status WriteFileByInode(InodeNum inode, const Bytes& data);
  // Byte-range access (used by the remote-open baseline, Section 6).
  [[nodiscard]] Result<Bytes> ReadAt(InodeNum inode, uint64_t offset, uint64_t length) const;
  [[nodiscard]] Status WriteAt(InodeNum inode, uint64_t offset, const Bytes& data);
  [[nodiscard]] Status Truncate(InodeNum inode, uint64_t size);

  // --- Accounting -----------------------------------------------------------
  // Logical bytes of file contents (the simulated local-disk usage; cache
  // space limits are enforced against this, not against host memory).
  uint64_t total_data_bytes() const { return total_data_bytes_; }
  uint64_t inode_count() const { return inodes_.size(); }
  // Host bytes actually retained for file contents, counting buffers shared
  // with other file systems / volumes once per `seen` set.
  uint64_t RetainedContentBytes(std::unordered_set<const void*>* seen) const;

 private:
  struct Inode {
    FileType type = FileType::kRegular;
    Mode mode = kDefaultFileMode;
    uint32_t link_count = 0;
    UserId owner = kAnonymousUser;
    SimTime mtime = 0;
    // Regular files. Stored as a lazy content ref (generative prefix +
    // interned tail) so a workstation's cached copy of a synthetic file
    // costs ~32 bytes of host memory; size()/accounting stay logical.
    content::Ref data;
    std::map<std::string, InodeNum> entries;  // directories (sorted for determinism)
    std::string symlink_target;               // symlinks
  };

  // Resolution result for the parent directory of a path's final component.
  struct ParentRef {
    InodeNum parent;
    std::string leaf;
  };

  [[nodiscard]] Result<InodeNum> ResolveInternal(std::string_view path, bool follow_final,
                                   int depth) const;
  // Resolves all but the last component; fails if the path names the root.
  [[nodiscard]] Result<ParentRef> ResolveParent(std::string_view path) const;

  Inode& Node(InodeNum n) { return inodes_.at(n); }
  const Inode& Node(InodeNum n) const { return inodes_.at(n); }
  StatInfo MakeStat(InodeNum n, const Inode& inode) const;
  InodeNum AllocInode(FileType type, Mode mode, UserId owner);
  void ReleaseData(Inode& inode);
  void UnlinkInode(InodeNum n);
  void RemoveTreeRecursive(InodeNum n);
  bool IsAncestorOf(InodeNum maybe_ancestor, InodeNum node) const;

  std::unordered_map<InodeNum, Inode> inodes_;
  InodeNum next_inode_ = kRootInode + 1;
  uint64_t total_data_bytes_ = 0;
  SimTime now_ = 0;
};

}  // namespace itc::unixfs

#endif  // SRC_UNIXFS_FILE_SYSTEM_H_
