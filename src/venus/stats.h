// Venus client-side counters, kept in their own header so the validation
// policies (src/venus/validation/) can update them without pulling in all of
// venus.h.

#ifndef SRC_VENUS_STATS_H_
#define SRC_VENUS_STATS_H_

#include <cstdint>

#include "src/common/types.h"

namespace itc::venus {

struct VenusStats {
  uint64_t opens = 0;
  uint64_t cache_hits = 0;  // opens served without a Fetch
  uint64_t fetches = 0;
  uint64_t stores = 0;
  uint64_t validations = 0;  // Validate + GrantLease round trips
  uint64_t stat_calls = 0;
  uint64_t bytes_fetched = 0;
  uint64_t bytes_stored = 0;
  uint64_t callback_breaks_received = 0;
  // Times a server was marked suspect (restart detected or connection lost):
  // all its cached entries dropped back to check-on-open validation.
  uint64_t suspect_marks = 0;
  // Lease mode: grants piggybacked on replies, batched renewal calls, and
  // the per-fid outcomes of those batches.
  uint64_t lease_grants = 0;
  uint64_t lease_renew_calls = 0;
  uint64_t leases_renewed = 0;
  uint64_t leases_rejected = 0;
  // Total virtual time spent inside Open() — mean open latency is
  // open_time_total / opens.
  SimTime open_time_total = 0;

  double MeanOpenLatency() const {
    return opens == 0 ? 0.0
                      : static_cast<double>(open_time_total) / static_cast<double>(opens);
  }

  double HitRatio() const {
    return opens == 0 ? 0.0
                      : static_cast<double>(cache_hits) / static_cast<double>(opens);
  }
};

}  // namespace itc::venus

#endif  // SRC_VENUS_STATS_H_
