#include "src/venus/file_cache.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/path.h"

namespace itc::venus {

FileCache::FileCache(unixfs::FileSystem* local_fs, std::string cache_dir,
                     const VenusConfig& config)
    : local_fs_(local_fs), cache_dir_(std::move(cache_dir)), config_(config) {
  ITC_CHECK(local_fs_ != nullptr);
  ITC_CHECK(local_fs_->MkDirAll(cache_dir_) == Status::kOk);
}

std::string FileCache::PathFor(const Fid& fid) const {
  return PathConcat(cache_dir_, fid.ToString());
}

CacheEntry* FileCache::Find(const Fid& fid) {
  auto it = entries_.find(fid);
  return it == entries_.end() ? nullptr : &it->second;
}

const CacheEntry* FileCache::Find(const Fid& fid) const {
  auto it = entries_.find(fid);
  return it == entries_.end() ? nullptr : &it->second;
}

CacheEntry& FileCache::PutStatus(const Fid& fid, const vice::VnodeStatus& status) {
  CacheEntry& e = entries_[fid];
  e.status = status;
  e.valid = true;
  return e;
}

CacheEntry& FileCache::InstallData(const Fid& fid, const vice::VnodeStatus& status,
                                   const Bytes& data) {
  CacheEntry& e = entries_[fid];
  if (!e.has_data) data_entries_ += 1;
  data_bytes_ -= e.accounted_bytes;
  e.status = status;
  e.valid = true;
  e.has_data = true;
  // A fetch replaces the local copy wholesale; any (erroneously surviving)
  // dirty mark would make FlushDirty re-store the server's own bytes.
  e.dirty = false;
  ITC_CHECK(local_fs_->WriteFile(PathFor(fid), data) == Status::kOk);
  e.accounted_bytes = data.size();
  data_bytes_ += e.accounted_bytes;
  stats_.insertions += 1;
  return e;
}

Result<Bytes> FileCache::ReadData(const Fid& fid) const {
  const CacheEntry* e = Find(fid);
  if (e == nullptr || !e->has_data) return Status::kNotFound;
  return local_fs_->ReadFile(PathFor(fid));
}

Status FileCache::WriteData(const Fid& fid, const Bytes& data) {
  CacheEntry* e = Find(fid);
  if (e == nullptr || !e->has_data) return Status::kNotFound;
  RETURN_IF_ERROR(local_fs_->WriteFile(PathFor(fid), data));
  data_bytes_ -= e->accounted_bytes;
  e->accounted_bytes = data.size();
  data_bytes_ += e->accounted_bytes;
  e->status.length = data.size();
  return Status::kOk;
}

void FileCache::NoteLocalSize(const Fid& fid, uint64_t actual_bytes) {
  CacheEntry* e = Find(fid);
  if (e == nullptr || !e->has_data) return;
  data_bytes_ -= e->accounted_bytes;
  e->accounted_bytes = actual_bytes;
  data_bytes_ += e->accounted_bytes;
}

void FileCache::Invalidate(const Fid& fid) {
  CacheEntry* e = Find(fid);
  if (e == nullptr) return;
  e->valid = false;
  stats_.invalidations += 1;
}

void FileCache::Erase(const Fid& fid) {
  auto it = entries_.find(fid);
  if (it == entries_.end()) return;
  if (it->second.has_data) {
    data_entries_ -= 1;
    data_bytes_ -= it->second.accounted_bytes;
    // The entry leaves the accounting either way; a failed unlink means the
    // bytes are still on the local disk, which is worth a trace.
    const std::string path = PathFor(fid);
    if (Status s = local_fs_->Unlink(path); s != Status::kOk) {
      ITC_LOG(kWarning) << "cache file unlink failed for " << path << ": " << s;
    }
  }
  entries_.erase(it);
}

void FileCache::InvalidateAll() {
  for (auto& [fid, e] : entries_) {
    e.valid = false;
  }
  stats_.invalidations += entries_.size();
}

void FileCache::Touch(const Fid& fid, SimTime now) {
  CacheEntry* e = Find(fid);
  if (e != nullptr) e->last_used = now;
}

void FileCache::Pin(const Fid& fid) {
  CacheEntry* e = Find(fid);
  if (e != nullptr) e->pin_count += 1;
}

void FileCache::Unpin(const Fid& fid) {
  CacheEntry* e = Find(fid);
  if (e != nullptr && e->pin_count > 0) e->pin_count -= 1;
}

size_t FileCache::data_entry_count() const { return data_entries_; }

std::vector<Fid> FileCache::EnforceLimits() {
  std::vector<Fid> evicted;
  auto over_limit = [this] {
    if (config_.cache_limit == VenusConfig::CacheLimit::kFileCount) {
      return data_entry_count() > config_.max_cache_files;
    }
    return data_bytes_ > config_.max_cache_bytes;
  };
  while (over_limit()) {
    // LRU victim among unpinned data-bearing entries.
    const Fid* victim = nullptr;
    SimTime oldest = 0;
    for (const auto& [fid, e] : entries_) {
      if (!e.has_data || e.pin_count > 0 || e.dirty) continue;
      if (victim == nullptr || e.last_used < oldest) {
        victim = &fid;
        oldest = e.last_used;
      }
    }
    if (victim == nullptr) break;  // everything pinned; give up
    const Fid fid = *victim;
    stats_.evictions += 1;
    stats_.evicted_bytes += entries_.at(fid).accounted_bytes;
    evicted.push_back(fid);
    Erase(fid);
  }
  return evicted;
}

std::vector<Fid> FileCache::CachedFids() const {
  std::vector<Fid> out;
  out.reserve(entries_.size());
  for (const auto& [fid, e] : entries_) out.push_back(fid);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace itc::venus
