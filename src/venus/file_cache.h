// Venus's on-disk whole-file cache.
//
// "Part of the disk on each workstation is used to store local files, while
//  the rest is used as a cache of files in Vice." (Section 3.2)
//
// Cached copies live as ordinary files in the workstation's local Unix file
// system under a cache directory, named by fid — exactly the prototype's
// representation. The cache tracks, per fid: the Vice status, whether data
// is present and believed valid, whether a deferred write is pending, and
// LRU recency. Eviction honours either the prototype's file-count limit or
// the revised space limit.

#ifndef SRC_VENUS_FILE_CACHE_H_
#define SRC_VENUS_FILE_CACHE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/fid.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/unixfs/file_system.h"
#include "src/venus/config.h"
#include "src/vice/vnode.h"

namespace itc::venus {

struct CacheEntry {
  vice::VnodeStatus status;
  bool has_data = false;
  // Data (and status) known to be current: freshly fetched, validated this
  // open (check-on-open), or covered by an unbroken callback promise.
  bool valid = false;
  // Server that supplied (or last validated) this entry. When that server's
  // restart epoch changes, its callback promises died with it: every entry
  // from it is marked suspect (valid=false) and revalidated on next use.
  ServerId origin_server = kInvalidServer;
  // Lease mode only: the entry may be used without contacting the server
  // while `valid` holds AND virtual time is before this expiry. 0 = no
  // lease (grant refused, lease mode off, or the promise was surrendered).
  SimTime lease_expiry = 0;
  SimTime last_used = 0;
  uint32_t pin_count = 0;  // open handles; pinned entries are not evicted
  // Deferred-write-back mode only: the local copy holds changes not yet
  // stored to the custodian. Dirty entries are never evicted.
  bool dirty = false;
  // Bytes this entry contributes to the cache's space accounting. The
  // intercept layer writes the cached copy directly through the local file
  // system, so the real file size can drift from this until NoteLocalSize
  // resynchronizes (Venus calls it on close of a dirty file).
  uint64_t accounted_bytes = 0;
};

struct CacheStats {
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t evicted_bytes = 0;
  uint64_t invalidations = 0;
};

class FileCache {
 public:
  FileCache(unixfs::FileSystem* local_fs, std::string cache_dir, const VenusConfig& config);

  CacheEntry* Find(const Fid& fid);
  const CacheEntry* Find(const Fid& fid) const;

  // Creates or refreshes an entry with status only (no data).
  CacheEntry& PutStatus(const Fid& fid, const vice::VnodeStatus& status);

  // Installs whole-file data for a fid, writing the local cache copy.
  // Returns the entry; caller must then call EnforceLimits and notify the
  // custodian about any evicted fids.
  CacheEntry& InstallData(const Fid& fid, const vice::VnodeStatus& status, const Bytes& data);

  // Reads the cached copy (entry must have data).
  [[nodiscard]] Result<Bytes> ReadData(const Fid& fid) const;
  // Overwrites the cached copy in place (local writes before close).
  [[nodiscard]] Status WriteData(const Fid& fid, const Bytes& data);

  // Resynchronizes space accounting after the cached copy was mutated
  // directly through the local file system (dirty close path).
  void NoteLocalSize(const Fid& fid, uint64_t actual_bytes);

  // Marks an entry invalid (callback broken / validation failed). Data is
  // kept: a later Validate can resurrect it without refetching.
  void Invalidate(const Fid& fid);
  // Removes an entry and its cache file entirely.
  void Erase(const Fid& fid);
  // Invalidate everything (e.g. reconnection after a network partition).
  void InvalidateAll();

  void Touch(const Fid& fid, SimTime now);
  void Pin(const Fid& fid);
  void Unpin(const Fid& fid);

  // Evicts least-recently-used unpinned entries until the configured limit
  // holds. Returns the evicted fids (Venus tells the custodians to drop
  // their callback promises).
  std::vector<Fid> EnforceLimits();

  uint64_t data_bytes() const { return data_bytes_; }
  size_t entry_count() const { return entries_.size(); }
  size_t data_entry_count() const;
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  // All fids currently cached (diagnostics / tests).
  std::vector<Fid> CachedFids() const;

  // Local unixfs path of the cached copy for `fid`. Derived from the fid on
  // demand rather than stored per entry — at 10k clients the per-entry path
  // strings alone were a measurable share of Venus's footprint.
  std::string PathFor(const Fid& fid) const;

 private:
  unixfs::FileSystem* local_fs_;
  std::string cache_dir_;
  VenusConfig config_;
  std::unordered_map<Fid, CacheEntry, FidHash> entries_;
  uint64_t data_bytes_ = 0;
  size_t data_entries_ = 0;  // entries with has_data (count-limit policy)
  CacheStats stats_;
};

}  // namespace itc::venus

#endif  // SRC_VENUS_FILE_CACHE_H_
