#include "src/venus/validation/validation_policy.h"

namespace itc::venus::validation {

namespace {

// The prototype scheme (Section 5.2): trust nothing across opens. Every use
// of a cached copy costs one Validate round trip — the "cache validity
// checking ... 65%" of the prototype's server load.
class CheckOnOpenPolicy final : public ValidationPolicy {
 public:
  explicit CheckOnOpenPolicy(ValidationHost* host) : host_(host) {}

  VenusConfig::Validation scheme() const override {
    return VenusConfig::Validation::kCheckOnOpen;
  }
  bool WantsEpochProbe() const override { return false; }
  bool Trusted(const CacheEntry&, SimTime) const override { return false; }

  Result<CheckResult> Check(const Fid& fid, SimTime) override {
    CacheEntry* e = host_->entry_cache().Find(fid);
    ASSIGN_OR_RETURN(auto vr, CallValidate(host_, fid, e->status.version));
    e = host_->entry_cache().Find(fid);
    if (e != nullptr) {
      if (vr.first) {
        e->status = vr.second;
        e->valid = true;
        e->origin_server = host_->last_contacted();
      } else {
        // Stale: the fresh version number must NOT be stamped onto the stale
        // data, or the next validation would pass vacuously.
        e->valid = false;
      }
    }
    return CheckResult{vr.first, vr.second};
  }

  void OnFetched(CacheEntry&) override {}
  void OnEvict(const Fid&) override {}

 private:
  ValidationHost* host_;
};

}  // namespace

std::unique_ptr<ValidationPolicy> MakeCheckOnOpenPolicy(ValidationHost* host) {
  return std::make_unique<CheckOnOpenPolicy>(host);
}

}  // namespace itc::venus::validation
