#include "src/venus/validation/validation_policy.h"

#include "src/rpc/wire.h"

namespace itc::venus::validation {

Result<std::pair<bool, vice::VnodeStatus>> CallValidate(ValidationHost* host,
                                                        const Fid& fid, uint64_t version) {
  rpc::Writer w;
  w.PutFid(fid);
  w.PutU64(version);
  ASSIGN_OR_RETURN(Bytes reply, host->CallFid(fid, vice::Proc::kValidate, w.Take()));
  host->venus_stats().validations += 1;
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(bool valid, r.Bool());
  ASSIGN_OR_RETURN(vice::VnodeStatus status, vice::ReadVnodeStatus(r));
  return std::make_pair(valid, status);
}

std::unique_ptr<ValidationPolicy> MakeValidationPolicy(ValidationHost* host) {
  switch (host->venus_config().validation) {
    case VenusConfig::Validation::kCheckOnOpen:
      return MakeCheckOnOpenPolicy(host);
    case VenusConfig::Validation::kCallbacks:
      return MakeCallbacksPolicy(host);
    case VenusConfig::Validation::kLeases:
      return MakeLeasesPolicy(host);
  }
  return MakeCheckOnOpenPolicy(host);  // unreachable
}

}  // namespace itc::venus::validation
