#include "src/venus/validation/validation_policy.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/rpc/wire.h"

namespace itc::venus::validation {

namespace {

// Leases (Gray & Cheriton): a callback promise with an expiry. While the
// lease is live the entry is trusted with zero communication, exactly like
// a callback — but the trust has a horizon, which changes everything at the
// edges:
//
//   * Partition: the server cannot break our lease, but it also will not
//     complete a conflicting write until the lease has run out. We may keep
//     reading until expiry (bounded staleness), then we fall back to
//     check-on-open and fail like everyone else until the partition heals.
//     Open-ended callbacks in the same situation serve stale data forever.
//   * Server crash: no re-establishment protocol. The restarted server
//     refuses grants for one term; our leases lapse on their own and every
//     open revalidates (check-on-open behaviour) until grants resume.
//
// Renewal is batched per server: when one lease enters the renew margin, a
// single RenewLeases call refreshes every aging lease from that server.
class LeasesPolicy final : public ValidationPolicy {
 public:
  explicit LeasesPolicy(ValidationHost* host) : host_(host) {}

  VenusConfig::Validation scheme() const override {
    return VenusConfig::Validation::kLeases;
  }
  bool WantsEpochProbe() const override { return false; }
  bool Trusted(const CacheEntry& e, SimTime now) const override {
    return e.valid && e.lease_expiry > now;
  }

  Result<CheckResult> Check(const Fid& fid, SimTime now) override {
    CacheEntry* e = host_->entry_cache().Find(fid);
    if (Trusted(*e, now)) {
      if (e->lease_expiry - now <= host_->venus_config().lease_renew_margin) {
        RenewAging(fid, e->origin_server, now);
        e = host_->entry_cache().Find(fid);
      }
      if (e != nullptr && Trusted(*e, now)) return CheckResult{true, e->status};
      if (e == nullptr) return Status::kInternal;
    }

    // No live lease: check-on-open fallback, via the combined
    // validate-and-grant call so a current copy comes back leased.
    rpc::Writer w;
    w.PutFid(fid);
    w.PutU64(e->status.version);
    ASSIGN_OR_RETURN(Bytes reply, host_->CallFid(fid, vice::Proc::kGrantLease, w.Take()));
    host_->venus_stats().validations += 1;
    rpc::Reader r(reply);
    RETURN_IF_ERROR(rpc::ExpectOk(r));
    ASSIGN_OR_RETURN(bool valid, r.Bool());
    ASSIGN_OR_RETURN(vice::VnodeStatus fresh, vice::ReadVnodeStatus(r));
    ASSIGN_OR_RETURN(uint64_t expiry, r.U64());
    e = host_->entry_cache().Find(fid);
    if (e != nullptr) {
      if (valid) {
        e->status = fresh;
        e->valid = true;
        e->origin_server = host_->last_contacted();
        // expiry == 0 (restart embargo): stay on per-open validation until
        // the server grants again.
        e->lease_expiry = static_cast<SimTime>(expiry);
        if (expiry > 0) host_->venus_stats().lease_grants += 1;
      } else {
        e->valid = false;
        e->lease_expiry = 0;
      }
    }
    return CheckResult{valid, fresh};
  }

  void OnFetched(CacheEntry& e) override {
    e.lease_expiry = host_->last_lease_expiry();
    if (e.lease_expiry > 0) host_->venus_stats().lease_grants += 1;
  }

  void OnEvict(const Fid& fid) override {
    rpc::Writer w;
    w.PutFid(fid);
    // Best effort; an unreleased lease just expires on its own.
    (void)host_->CallFid(fid, vice::Proc::kReleaseLease, w.Take());
  }

 private:
  // Renews, in one batched call, every live lease from `origin` that
  // expires within the renew margin. Best effort: if the server is
  // unreachable the leases simply keep their current horizon (that bound is
  // the whole point), and we do not retry within the same margin window so a
  // partition costs at most one timeout per window, not one per open.
  void RenewAging(const Fid& trigger, ServerId origin, SimTime now) {
    const SimTime margin = host_->venus_config().lease_renew_margin;
    auto last = renew_attempt_.find(origin);
    if (last != renew_attempt_.end() && now - last->second < margin) return;
    renew_attempt_[origin] = now;

    FileCache& cache = host_->entry_cache();
    std::vector<Fid> aging;
    for (const Fid& fid : cache.CachedFids()) {
      const CacheEntry* e = cache.Find(fid);
      if (e == nullptr || e->origin_server != origin) continue;
      if (!e->valid || e->lease_expiry <= now) continue;
      if (e->lease_expiry - now > margin) continue;
      aging.push_back(fid);
    }
    if (aging.empty()) return;

    rpc::Writer w;
    w.PutU32(static_cast<uint32_t>(aging.size()));
    for (const Fid& f : aging) w.PutFid(f);
    auto reply = host_->CallFid(trigger, vice::Proc::kRenewLeases, w.Take());
    if (!reply.ok()) return;
    host_->venus_stats().lease_renew_calls += 1;

    rpc::Reader r(*reply);
    if (rpc::ExpectOk(r) != Status::kOk) return;
    auto new_expiry = r.U64();
    auto n_rejected = new_expiry.ok() ? r.U32() : Result<uint32_t>(Status::kProtocolError);
    if (!n_rejected.ok()) return;
    std::vector<Fid> rejected;
    rejected.reserve(*n_rejected);
    for (uint32_t i = 0; i < *n_rejected; ++i) {
      auto fid = r.FidField();
      if (!fid.ok()) return;
      rejected.push_back(*fid);
    }
    for (const Fid& fid : aging) {
      CacheEntry* e = cache.Find(fid);
      if (e == nullptr) continue;
      const bool was_rejected =
          std::find(rejected.begin(), rejected.end(), fid) != rejected.end();
      if (was_rejected) {
        // Expired at the server (or under the restart embargo): the next use
        // must revalidate. Data stays — a GrantLease can resurrect it.
        e->lease_expiry = 0;
        host_->venus_stats().leases_rejected += 1;
      } else {
        e->lease_expiry = static_cast<SimTime>(*new_expiry);
        host_->venus_stats().leases_renewed += 1;
      }
    }
  }

  ValidationHost* host_;
  // Last renewal attempt per server (throttles retries under partition).
  std::map<ServerId, SimTime> renew_attempt_;
};

}  // namespace

std::unique_ptr<ValidationPolicy> MakeLeasesPolicy(ValidationHost* host) {
  return std::make_unique<LeasesPolicy>(host);
}

}  // namespace itc::venus::validation
