#include "src/venus/validation/validation_policy.h"

#include "src/rpc/wire.h"

namespace itc::venus::validation {

namespace {

// The revised scheme: the server promises to notify before the entry goes
// stale, so a valid entry costs no communication at all. The promise is
// open-ended, which is why this is the only policy that must actively
// notice server restarts (epoch probe) — a crashed server's promises died
// with its volatile state.
class CallbacksPolicy final : public ValidationPolicy {
 public:
  explicit CallbacksPolicy(ValidationHost* host) : host_(host) {}

  VenusConfig::Validation scheme() const override {
    return VenusConfig::Validation::kCallbacks;
  }
  bool WantsEpochProbe() const override { return true; }
  bool Trusted(const CacheEntry& e, SimTime) const override { return e.valid; }

  Result<CheckResult> Check(const Fid& fid, SimTime now) override {
    CacheEntry* e = host_->entry_cache().Find(fid);
    if (Trusted(*e, now)) return CheckResult{true, e->status};
    // Promise lost (break received, server suspect, eviction of the sink):
    // fall back to one Validate, which also re-registers the callback.
    ASSIGN_OR_RETURN(auto vr, CallValidate(host_, fid, e->status.version));
    e = host_->entry_cache().Find(fid);
    if (e != nullptr) {
      if (vr.first) {
        e->status = vr.second;
        e->valid = true;
        e->origin_server = host_->last_contacted();
      } else {
        e->valid = false;
      }
    }
    return CheckResult{vr.first, vr.second};
  }

  void OnFetched(CacheEntry&) override {}

  void OnEvict(const Fid& fid) override {
    rpc::Writer w;
    w.PutFid(fid);
    // Best effort; the server also GC-s promises when it next breaks them.
    (void)host_->CallFid(fid, vice::Proc::kRemoveCallback, w.Take());
  }

 private:
  ValidationHost* host_;
};

}  // namespace

std::unique_ptr<ValidationPolicy> MakeCallbacksPolicy(ValidationHost* host) {
  return std::make_unique<CallbacksPolicy>(host);
}

}  // namespace itc::venus::validation
