// Cache-validation policies: the scheme-specific half of Venus.
//
// Section 3.2 leaves the workstation a choice about when to believe its
// cached copies. The prototype asked the server on every open
// (check-on-open); the revised design inverted the responsibility with
// callback promises; leases (Gray & Cheriton, SOSP 1989) are the third
// point in the space — a callback promise with an expiry, trading a bounded
// staleness window for crash recovery and partition behaviour that needs no
// re-establishment protocol.
//
// Venus keeps the mechanism (cache, RPC plumbing, fid routing) and delegates
// every scheme decision here: whether an entry may be used without a round
// trip, which RPC revalidates it, what happens on eviction, and whether a
// fresh connection needs a restart-epoch probe.

#ifndef SRC_VENUS_VALIDATION_VALIDATION_POLICY_H_
#define SRC_VENUS_VALIDATION_VALIDATION_POLICY_H_

#include <memory>
#include <utility>

#include "src/common/fid.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/venus/config.h"
#include "src/venus/file_cache.h"
#include "src/venus/stats.h"
#include "src/vice/protocol.h"

namespace itc::venus::validation {

// What Venus exposes to a policy. CallFid routes to the fid's custodian (or
// nearest replica) with location-hint refresh, exactly like Venus's own
// calls.
class ValidationHost {
 public:
  virtual ~ValidationHost() = default;
  [[nodiscard]] virtual Result<Bytes> CallFid(const Fid& fid, vice::Proc proc,
                                              const Bytes& request) = 0;
  virtual FileCache& entry_cache() = 0;
  virtual VenusStats& venus_stats() = 0;
  virtual const VenusConfig& venus_config() const = 0;
  // Server that answered the most recent successful call.
  virtual ServerId last_contacted() const = 0;
  // Lease expiry carried by the most recent Fetch/FetchStatus reply
  // (0 outside lease mode, or when the grant was refused).
  virtual SimTime last_lease_expiry() const = 0;
};

// Outcome of Check(): either the cached entry may be used (after whatever
// round trips the scheme needed), or it is stale and the caller must fetch.
// `fresh` is the server's current status when a call was made — equal to the
// entry's own status when it was trusted locally.
struct CheckResult {
  bool usable = false;
  vice::VnodeStatus fresh;
};

class ValidationPolicy {
 public:
  virtual ~ValidationPolicy() = default;

  virtual VenusConfig::Validation scheme() const = 0;

  // Should a fresh connection probe the server's restart epoch? Callback
  // promises are open-ended, so their holder must notice crashes; leases
  // expire on their own (the restarted server refuses grants for one term
  // instead), and check-on-open never trusts — neither probes.
  virtual bool WantsEpochProbe() const = 0;

  // May the entry be used right now without contacting the server?
  virtual bool Trusted(const CacheEntry& e, SimTime now) const = 0;

  // Establishes whether the cached entry for `fid` is current, contacting
  // the server as the scheme requires (nothing, Validate, GrantLease,
  // batched renewals). The entry must exist. On usable=true the entry has
  // been stamped trusted; on usable=false its data is stale and the caller
  // refetches.
  [[nodiscard]] virtual Result<CheckResult> Check(const Fid& fid, SimTime now) = 0;

  // A Fetch/FetchStatus reply just installed `e`: stamp scheme trust state
  // (leases read the piggybacked grant via host->last_lease_expiry()).
  virtual void OnFetched(CacheEntry& e) = 0;

  // `fid` was evicted from the cache: surrender the scheme's server-side
  // state for it (callback promise / lease), best effort.
  virtual void OnEvict(const Fid& fid) = 0;
};

std::unique_ptr<ValidationPolicy> MakeCheckOnOpenPolicy(ValidationHost* host);
std::unique_ptr<ValidationPolicy> MakeCallbacksPolicy(ValidationHost* host);
std::unique_ptr<ValidationPolicy> MakeLeasesPolicy(ValidationHost* host);

// Dispatches on host->venus_config().validation.
std::unique_ptr<ValidationPolicy> MakeValidationPolicy(ValidationHost* host);

// Shared by check-on-open and callbacks: one kValidate round trip. Returns
// (our copy is current?, the server's status).
[[nodiscard]] Result<std::pair<bool, vice::VnodeStatus>> CallValidate(ValidationHost* host,
                                                                      const Fid& fid,
                                                                      uint64_t version);

}  // namespace itc::venus::validation

#endif  // SRC_VENUS_VALIDATION_VALIDATION_POLICY_H_
