// Venus configuration: prototype vs revised client behaviour.

#ifndef SRC_VENUS_CONFIG_H_
#define SRC_VENUS_CONFIG_H_

#include <cstdint>

#include "src/common/types.h"

namespace itc::venus {

struct VenusConfig {
  // Cache validation scheme (Section 3.2). kCheckOnOpen is the prototype:
  // a Validate RPC on every open of a cached file. kCallbacks is the
  // revised invalidate-on-modification scheme: cached entries stay valid
  // until the server breaks the callback promise. kLeases is the third
  // scheme (Gray & Cheriton): a callback promise with an expiry — entries
  // are trusted while their lease is live, renewed in per-server batches,
  // and fall back to check-on-open once the lease lapses.
  enum class Validation { kCheckOnOpen, kCallbacks, kLeases };
  Validation validation = Validation::kCallbacks;

  // Lease mode only: when a live lease is within this margin of expiry, an
  // open renews every aging lease from that server in one batched call.
  // This is a legal literal site for a lease duration (the no-raw-lease-term
  // lint rule pins every other site to the config).
  SimTime lease_renew_margin = Seconds(10);

  // Cache limit policy (Section 3.5.1). The prototype limited "the total
  // number of files in the cache rather than the total size ... In view of
  // our negative experience with this approach, we will incorporate a
  // space-limited cache management algorithm."
  enum class CacheLimit { kFileCount, kSpace };
  CacheLimit cache_limit = CacheLimit::kSpace;
  uint64_t max_cache_bytes = 20ull * 1024 * 1024;
  uint32_t max_cache_files = 400;

  // Pathname traversal side (Section 5.3). true = the revised scheme: Venus
  // caches directories and walks them itself, presenting fids to Vice.
  // false = the prototype: full pathnames go to the server (ResolvePath).
  bool client_path_traversal = true;

  // Prefer a read-only replica (nearest site) over the read-write custodian
  // when one has been released and the access does not need to write.
  bool prefer_readonly_replicas = true;

  // Write-back policy (Section 3.2): "Changes to a cached file may be
  // transmitted on close ... or deferred until a later time. In our design,
  // Virtue stores a file back when it is closed ... to simplify recovery
  // from workstation crashes [and for] a better approximation to a
  // timesharing file system." kDeferred implements the alternative the
  // paper rejected, for the ablation: stores coalesce until FlushDirty(),
  // logout, or the dirty queue reaching max_dirty_files.
  enum class WriteBack { kOnClose, kDeferred };
  WriteBack write_back = WriteBack::kOnClose;
  uint32_t max_dirty_files = 10;
};

// The prototype, as measured in Section 5.2.
inline VenusConfig PrototypeVenusConfig() {
  VenusConfig c;
  c.validation = VenusConfig::Validation::kCheckOnOpen;
  c.cache_limit = VenusConfig::CacheLimit::kFileCount;
  c.client_path_traversal = false;
  c.prefer_readonly_replicas = true;
  return c;
}

}  // namespace itc::venus

#endif  // SRC_VENUS_CONFIG_H_
