#include "src/venus/venus.h"

#include <algorithm>

#include "src/common/content.h"
#include "src/common/logging.h"
#include "src/common/path.h"
#include "src/rpc/wire.h"

namespace itc::venus {

using vice::DirItem;
using vice::DirMap;
using vice::Proc;
using vice::VnodeStatus;
using vice::VolumeInfo;

Venus::Venus(NodeId node, sim::Clock* clock, unixfs::FileSystem* local_fs,
             const std::string& cache_dir, VenusConfig config, const ServerMap* servers,
             ServerId home_server, net::Network* network, const sim::CostModel& cost,
             uint64_t seed)
    : node_(node),
      clock_(clock),
      local_fs_(local_fs),
      config_(config),
      servers_(servers),
      home_server_(home_server),
      network_(network),
      cost_(cost),
      seed_(seed),
      cache_(local_fs, cache_dir, config) {
  ITC_CHECK(clock_ != nullptr && local_fs_ != nullptr && servers_ != nullptr &&
            network_ != nullptr);
  policy_ = validation::MakeValidationPolicy(this);
}

Venus::~Venus() { Logout(); }

// --- Session ---------------------------------------------------------------------

Status Venus::Login(UserId user, const crypto::Key& user_key) {
  if (logged_in()) Logout();
  user_ = user;
  user_key_ = user_key;
  // Authenticate to the home cluster server immediately; other connections
  // are made lazily as custodians are contacted.
  auto conn = ConnectionTo(home_server_);
  if (!conn.ok()) {
    user_ = kAnonymousUser;
    return conn.status();
  }
  return Status::kOk;
}

void Venus::Logout() {
  // Deferred writes must not outlive the session: flush, and drop whatever
  // could not be stored (it must never be replayed under the NEXT user's
  // credentials).
  if (!dirty_queue_.empty()) (void)FlushDirty();
  for (const Fid& fid : dirty_queue_) {
    CacheEntry* e = cache_.Find(fid);
    if (e != nullptr) e->dirty = false;
  }
  dirty_queue_.clear();
  // Surrender callback sinks everywhere, not just where a connection is
  // currently open: a server whose connection dropped mid-session may still
  // hold our sink pointer.
  for (const auto& [sid, vs] : *servers_) vs->UnregisterCallbackSink(node_);
  connections_.clear();
  // Without connections (and with promises surrendered) nothing cached can
  // be trusted until revalidated.
  cache_.InvalidateAll();
  user_ = kAnonymousUser;
  root_volume_ = kInvalidVolume;
}

// --- RPC plumbing -----------------------------------------------------------------

Result<rpc::ClientConnection*> Venus::ConnectionTo(ServerId server) {
  if (!logged_in()) return Status::kAuthFailed;
  auto it = connections_.find(server);
  if (it != connections_.end()) return it->second.get();

  auto sit = servers_->find(server);
  if (sit == servers_->end()) return Status::kUnavailable;
  vice::ViceServer* vs = sit->second;

  ASSIGN_OR_RETURN(
      auto conn,
      rpc::ClientConnection::Connect(node_, user_, user_key_, &vs->endpoint(), network_,
                                     cost_, clock_,
                                     seed_ ^ (static_cast<uint64_t>(server) << 32) ^
                                         static_cast<uint64_t>(clock_->now()),
                                     rpc::ClientOptions{&vice::ViceOpSchema(),
                                                        &call_stats_}));
  vs->RegisterCallbackSink(node_, this);
  rpc::ClientConnection* raw = conn.get();
  connections_[server] = std::move(conn);

  // Restart detection, only for schemes whose promises are open-ended
  // (check-on-open never trusts a promise; leases expire on their own).
  // Callback state is volatile at the server, so a fresh connection asks for
  // the restart epoch; a bump since the last one we saw means the server
  // crashed and every promise it held for us died with it.
  if (policy_->WantsEpochProbe()) {
    auto epoch_reply = raw->Call(static_cast<uint32_t>(Proc::kProbeEpoch), Bytes{});
    if (epoch_reply.ok()) {
      rpc::Reader r(*epoch_reply);
      Status st = Status::kOk;
      if (r.ReadStatus(&st) == Status::kOk && st == Status::kOk) {
        if (auto epoch = r.U32(); epoch.ok()) {
          auto known = server_epochs_.find(server);
          if (known != server_epochs_.end() && known->second != *epoch) {
            MarkServerSuspect(server);
          }
          server_epochs_[server] = *epoch;
        }
      }
    }
  }
  return raw;
}

void Venus::MarkServerSuspect(ServerId server) {
  stats_.suspect_marks += 1;
  for (const Fid& fid : cache_.CachedFids()) {
    CacheEntry* e = cache_.Find(fid);
    if (e == nullptr || e->origin_server != server) continue;
    // Every promise the server held for us died with its volatile state —
    // leases included: a restarted server has forgotten the grant, so
    // trusting the entry until its old expiry would read stale data the
    // embargoed server can no longer protect.
    e->lease_expiry = 0;
    // Dirty entries stay trusted: the local copy IS the newest version and
    // will be stored back; everything else revalidates before next use.
    if (!e->dirty) e->valid = false;
  }
}

void Venus::NoteServerUnreachable(ServerId server) {
  if (config_.validation == VenusConfig::Validation::kLeases) {
    // Mere unreachability does not void a lease: the server — crashed or
    // partitioned — will not complete a conflicting write before our expiry
    // (restart embargo covers the crash case). Bounded staleness until then
    // is the availability the scheme buys.
    return;
  }
  MarkServerSuspect(server);
}

Result<Bytes> Venus::CallServer(ServerId server, Proc proc, const Bytes& request) {
  ASSIGN_OR_RETURN(rpc::ClientConnection * conn, ConnectionTo(server));
  auto reply = conn->Call(static_cast<uint32_t>(proc), request);
  if (reply.status() == Status::kConnectionBroken) {
    // The server no longer knows this connection — it restarted and its
    // connection table (volatile state) died with it. The call was never
    // executed, so a single re-handshake and retry is safe for any op; the
    // fresh connection's epoch probe marks everything the server supplied
    // as suspect.
    connections_.erase(server);
    if (auto sit = servers_->find(server); sit != servers_->end()) {
      sit->second->UnregisterCallbackSink(node_);
    }
    MarkServerSuspect(server);
    ASSIGN_OR_RETURN(conn, ConnectionTo(server));
    reply = conn->Call(static_cast<uint32_t>(proc), request);
  }
  if (reply.ok()) last_contacted_ = server;
  return reply;
}

Result<Bytes> Venus::CallForFid(const Fid& fid, Proc proc, const Bytes& request) {
  ASSIGN_OR_RETURN(std::vector<ServerId> candidates, ServerCandidates(fid.volume));

  Status transport_failure = Status::kUnavailable;
  for (ServerId server : candidates) {
    auto reply = CallServer(server, proc, request);
    if (!reply.ok()) {
      if (reply.status() == Status::kUnavailable ||
          reply.status() == Status::kConnectionBroken) {
        // Site down: read-only replication's availability payoff — fall
        // through to the next replica site. Surrender our callback sink at
        // that server too; otherwise it would keep a pointer to this Venus
        // that Logout (which only walks live connections) would never clear.
        transport_failure = reply.status();
        connections_.erase(server);  // force a fresh handshake next time
        if (auto sit = servers_->find(server); sit != servers_->end()) {
          sit->second->UnregisterCallbackSink(node_);
        }
        // The server may have crashed: open-ended promises it held for us
        // cannot be trusted until revalidated (leases keep their own bounded
        // horizon — see NoteServerUnreachable).
        NoteServerUnreachable(server);
        continue;
      }
      return reply.status();
    }

    // Peek at the application status: a kNotCustodian reply means our cached
    // location hint is stale ("clients use cached location information as
    // hints"); refresh and retry once.
    rpc::Reader peek(*reply);
    Status app_status = Status::kOk;
    RETURN_IF_ERROR(peek.ReadStatus(&app_status));
    if (app_status != Status::kNotCustodian) return reply;

    RETURN_IF_ERROR(VolumeInfoFor(fid.volume, /*refresh=*/true).status());
    ASSIGN_OR_RETURN(ServerId retry_server, ServerFor(fid.volume));
    if (retry_server == server) return reply;  // hint did not change; give up
    return CallServer(retry_server, proc, request);
  }
  return transport_failure;
}

// --- Location ----------------------------------------------------------------------

Result<VolumeId> Venus::RootVolume() {
  if (root_volume_ != kInvalidVolume) return root_volume_;
  ASSIGN_OR_RETURN(Bytes reply, CallServer(home_server_, Proc::kGetRootVolume, Bytes{}));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(root_volume_, r.U32());
  return root_volume_;
}

Result<VolumeInfo> Venus::VolumeInfoFor(VolumeId volume, bool refresh) {
  if (!refresh) {
    auto it = volume_hints_.find(volume);
    if (it != volume_hints_.end()) return it->second;
  }
  rpc::Writer w;
  w.PutU32(volume);
  ASSIGN_OR_RETURN(Bytes reply, CallServer(home_server_, Proc::kGetVolumeInfo, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(VolumeInfo info, vice::ReadVolumeInfo(r));
  volume_hints_[volume] = info;
  return info;
}

Result<std::vector<ServerId>> Venus::ServerCandidates(VolumeId volume) {
  ASSIGN_OR_RETURN(VolumeInfo info, VolumeInfoFor(volume, /*refresh=*/false));
  if (info.read_only && !info.replica_sites.empty()) {
    // "Localize if possible": a replica in our own cluster first, then the
    // remaining sites as availability fallbacks.
    const net::Topology& topo = network_->topology();
    const ClusterId mine = topo.ClusterOf(node_);
    std::vector<ServerId> out;
    for (ServerId site : info.replica_sites) {
      auto it = servers_->find(site);
      if (it != servers_->end() && topo.ClusterOf(it->second->node()) == mine) {
        out.push_back(site);
      }
    }
    for (ServerId site : info.replica_sites) {
      if (std::find(out.begin(), out.end(), site) == out.end()) out.push_back(site);
    }
    return out;
  }
  return std::vector<ServerId>{info.custodian};
}

Result<ServerId> Venus::ServerFor(VolumeId volume) {
  ASSIGN_OR_RETURN(std::vector<ServerId> candidates, ServerCandidates(volume));
  return candidates.front();
}

Result<VolumeId> Venus::ChooseVolume(VolumeId volume, bool for_update) {
  if (for_update || !config_.prefer_readonly_replicas) return volume;
  ASSIGN_OR_RETURN(VolumeInfo info, VolumeInfoFor(volume, /*refresh=*/false));
  if (!info.read_only && info.ro_clone != kInvalidVolume) return info.ro_clone;
  return volume;
}

// --- Cache core ------------------------------------------------------------------------

Result<CacheEntry*> Venus::EnsureData(const Fid& fid, bool* hit) {
  clock_->Advance(cost_.cache_lookup);
  *hit = false;
  CacheEntry* e = cache_.Find(fid);

  if (e != nullptr && e->has_data && e->dirty) {
    // A deferred write is pending: the local copy IS the newest version.
    // Never validate or fetch over it — that would silently discard the
    // user's unflushed changes (last-close-wins resolves any conflict when
    // the store finally happens).
    *hit = true;
    cache_.Touch(fid, clock_->now());
    return e;
  }

  if (e != nullptr && e->has_data) {
    // The policy decides what "current" costs: nothing (live callback or
    // lease), one Validate (check-on-open / lost promise), or a GrantLease
    // with batched renewals. On usable=true the entry is already stamped.
    auto v = policy_->Check(fid, clock_->now());
    if (v.ok()) {
      e = cache_.Find(fid);  // revalidate pointer (no rehash occurred, but be safe)
      if (v->usable) {
        *hit = true;
        cache_.Touch(fid, clock_->now());
        return e;
      }
      // Stale copy: fall through to fetch.
    } else if (v.status() == Status::kStaleFid) {
      // An open handle (pinned) keeps its local copy alive, Unix-style;
      // erasing would unlink the inode out from under the descriptor.
      if (e->pin_count > 0) {
        cache_.Invalidate(fid);
      } else {
        cache_.Erase(fid);
      }
      return Status::kStaleFid;
    } else {
      return v.status();
    }
  }

  Bytes data;
  auto status = RpcFetch(fid, &data);
  if (!status.ok()) return status.status();
  // Writing the fetched copy to the local disk cache costs local I/O time.
  clock_->Advance(cost_.LocalIoTime(data.size()));
  CacheEntry& entry = cache_.InstallData(fid, *status, data);
  entry.origin_server = last_contacted_;
  policy_->OnFetched(entry);
  cache_.Touch(fid, clock_->now());
  // The just-installed file must survive eviction even if it alone exceeds
  // the configured limit (it is about to be used).
  cache_.Pin(fid);
  DropEvicted(cache_.EnforceLimits());
  cache_.Unpin(fid);
  CacheEntry* out = cache_.Find(fid);
  return out != nullptr ? Result<CacheEntry*>(out) : Status::kInternal;
}

Result<VnodeStatus> Venus::EnsureStatus(const Fid& fid) {
  clock_->Advance(cost_.cache_lookup);
  CacheEntry* e = cache_.Find(fid);
  if (e != nullptr && policy_->Trusted(*e, clock_->now())) {
    cache_.Touch(fid, clock_->now());
    return e->status;
  }
  if (e != nullptr && e->has_data) {
    if (e->dirty) return e->status;  // pending local write: local truth
    // The policy's check refreshes status as a side effect — and it alone
    // decides whether the entry may adopt the fresh version number (stamping
    // a fresh version onto stale data would make the next validation pass
    // vacuously and serve the stale bytes as current).
    ASSIGN_OR_RETURN(auto check, policy_->Check(fid, clock_->now()));
    return check.fresh;
  }
  ASSIGN_OR_RETURN(VnodeStatus status, RpcFetchStatus(fid));
  CacheEntry& entry = cache_.PutStatus(fid, status);
  entry.origin_server = last_contacted_;
  policy_->OnFetched(entry);
  cache_.Touch(fid, clock_->now());
  return status;
}

Result<DirMap> Venus::DirEntriesOf(const Fid& dir) {
  bool hit = false;
  ASSIGN_OR_RETURN(CacheEntry * e, EnsureData(dir, &hit));
  if (e->status.type != vice::VnodeType::kDirectory) return Status::kNotDirectory;
  ASSIGN_OR_RETURN(Bytes data, cache_.ReadData(dir));
  clock_->Advance(cost_.LocalIoTime(data.size()));
  auto entries = vice::DeserializeDirectory(data);
  if (!entries.ok()) return Status::kInternal;
  return entries;
}

void Venus::DropEvicted(const std::vector<Fid>& evicted) {
  if (!logged_in()) return;
  // The policy surrenders whatever server-side promise the scheme keeps per
  // file (callback promise, lease) — a no-op for check-on-open.
  for (const Fid& fid : evicted) policy_->OnEvict(fid);
}

void Venus::InvalidateDir(const Fid& dir) { cache_.Invalidate(dir); }

// --- RPC wrappers ------------------------------------------------------------------------

Result<VnodeStatus> Venus::RpcFetch(const Fid& fid, Bytes* data) {
  rpc::Writer w;
  w.PutFid(fid);
  last_lease_expiry_ = 0;
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kFetch, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(VnodeStatus status, vice::ReadVnodeStatus(r));
  ASSIGN_OR_RETURN(*data, r.BytesField());
  if (config_.validation == VenusConfig::Validation::kLeases) {
    ASSIGN_OR_RETURN(uint64_t expiry, r.U64());
    last_lease_expiry_ = static_cast<SimTime>(expiry);
  }
  stats_.fetches += 1;
  stats_.bytes_fetched += data->size();
  return status;
}

Result<VnodeStatus> Venus::RpcFetchStatus(const Fid& fid) {
  rpc::Writer w;
  w.PutFid(fid);
  last_lease_expiry_ = 0;
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kFetchStatus, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(VnodeStatus status, vice::ReadVnodeStatus(r));
  if (config_.validation == VenusConfig::Validation::kLeases) {
    ASSIGN_OR_RETURN(uint64_t expiry, r.U64());
    last_lease_expiry_ = static_cast<SimTime>(expiry);
  }
  return status;
}

Result<VnodeStatus> Venus::RpcStore(const Fid& fid, const Bytes& data) {
  rpc::Writer w;
  w.PutFid(fid);
  w.PutBytes(data);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kStore, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  stats_.stores += 1;
  stats_.bytes_stored += data.size();
  return vice::ReadVnodeStatus(r);
}

// --- Resolution ---------------------------------------------------------------------------

Result<Fid> Venus::ResolveFinal(const std::string& path, bool for_update,
                                bool follow_final) {
  if (config_.client_path_traversal) return WalkClient(path, for_update, follow_final);
  return WalkServer(path);
}

Result<Venus::ParentRef> Venus::ResolveParentOf(const std::string& path, bool for_update) {
  const std::string_view leaf = Basename(path);
  if (!IsValidName(leaf)) return Status::kInvalidArgument;
  auto parent = ResolveFinal(std::string(Dirname(path)), for_update,
                             /*follow_final=*/true);
  if (!parent.ok()) {
    if (parent.status() == Status::kSymlinkEscape) {
      // Keep the invariant that escape_path_ rewrites the whole argument:
      // the parent walk dropped the leaf, so put it back.
      if (escape_path_.empty() || escape_path_.back() != '/') escape_path_ += '/';
      escape_path_.append(leaf);
    }
    return parent.status();
  }
  return ParentRef{*parent, std::string(leaf)};
}

// An update's path traversal only *reads* the directories along the way, so
// the walk below resolves every hop through the nearest read-only clone just
// like a read's walk would — "localize if possible" applies to the whole
// prefix. Only the finally resolved object must live in the read-write
// volume; clones preserve vnode numbers and uniquifiers (Volume::Clone), so
// the mapping is a volume-id rebrand of the resolved fid.
Result<Fid> Venus::MapForUpdate(Fid fid, bool for_update) {
  if (!for_update || !fid.valid()) return fid;
  ASSIGN_OR_RETURN(vice::VolumeInfo info, VolumeInfoFor(fid.volume, /*refresh=*/false));
  if (info.read_only && info.read_write_volume != kInvalidVolume) {
    fid.volume = info.read_write_volume;
  }
  return fid;
}

Result<Fid> Venus::WalkClient(const std::string& path, bool for_update, bool follow_final) {
  if (path.empty() || path.front() != '/') return Status::kInvalidArgument;

  ASSIGN_OR_RETURN(VolumeId root_vid, RootVolume());
  ASSIGN_OR_RETURN(VolumeId vid, ChooseVolume(root_vid, /*for_update=*/false));
  Fid cur = vice::VolumeRootFid(vid);

  std::vector<std::string> components = SplitPath(path);
  size_t i = 0;
  int symlink_depth = 0;
  // The directories traversed to reach `cur`, so ".." works across mount
  // points: at a mounted volume's root the parent is the directory holding
  // the mount point, which only the traversal itself knows.
  std::vector<Fid> crumbs;

  while (i < components.size()) {
    const std::string comp = components[i];
    if (comp == ".") {
      ++i;
      continue;
    }
    if (comp == "..") {
      if (!crumbs.empty()) {
        cur = crumbs.back();
        crumbs.pop_back();
      }
      // ".." at the very top of the shared space stays there, Unix-style.
      ++i;
      continue;
    }

    ASSIGN_OR_RETURN(DirMap entries, DirEntriesOf(cur));
    auto it = entries.find(comp);
    if (it == entries.end()) return Status::kNotFound;
    const DirItem item = it->second;
    const bool is_final = (i + 1 == components.size());
    ++i;

    switch (item.kind) {
      case DirItem::Kind::kMountPoint: {
        ASSIGN_OR_RETURN(VolumeId next,
                         ChooseVolume(item.mount_volume, /*for_update=*/false));
        crumbs.push_back(cur);
        cur = vice::VolumeRootFid(next);
        break;
      }
      case DirItem::Kind::kSymlink: {
        if (is_final && !follow_final) return MapForUpdate(item.fid, for_update);
        if (++symlink_depth > kMaxSymlinkDepth) return Status::kSymlinkLoop;
        bool hit = false;
        ASSIGN_OR_RETURN(CacheEntry * link_entry, EnsureData(item.fid, &hit));
        (void)link_entry;
        ASSIGN_OR_RETURN(Bytes target_bytes, cache_.ReadData(item.fid));
        const std::string target = ToString(target_bytes);
        if (!target.empty() && target.front() == '/' && escape_predicate_ &&
            escape_predicate_(target)) {
          // The link leaves the shared name space. Splice the unconsumed
          // components onto the target and hand the rewritten workstation
          // path to the VFS switch (see TakeEscapePath).
          std::string rewritten = target;
          while (rewritten.size() > 1 && rewritten.back() == '/') rewritten.pop_back();
          for (size_t j = i; j < components.size(); ++j) {
            if (rewritten.back() != '/') rewritten += '/';
            rewritten += components[j];
          }
          escape_path_ = std::move(rewritten);
          return Status::kSymlinkEscape;
        }
        std::vector<std::string> spliced = SplitPath(target);
        spliced.insert(spliced.end(), components.begin() + static_cast<ptrdiff_t>(i),
                       components.end());
        components = std::move(spliced);
        i = 0;
        if (!target.empty() && target.front() == '/') {
          ASSIGN_OR_RETURN(VolumeId restart, ChooseVolume(root_vid, /*for_update=*/false));
          cur = vice::VolumeRootFid(restart);
          crumbs.clear();
        }
        // Relative target: continue from the current directory (cur is
        // still the directory containing the link).
        break;
      }
      default:
        if (!is_final) crumbs.push_back(cur);
        cur = item.fid;
        break;
    }
  }
  return MapForUpdate(cur, for_update);
}

void Venus::EraseNameMapping(std::string_view path) {
  auto it = name_cache_.find(path);
  if (it != name_cache_.end()) name_cache_.erase(it);
}

Result<Fid> Venus::WalkServer(const std::string& path) {
  if (path.empty() || path.front() != '/') return Status::kInvalidArgument;

  auto cached = name_cache_.find(path);
  if (cached != name_cache_.end()) return cached->second;

  VolumeId vid = kInvalidVolume;  // the server substitutes the root volume
  std::string remaining = path;
  // Traversal may hop custodians as it crosses mount points.
  for (int hop = 0; hop < 8; ++hop) {
    rpc::Writer w;
    w.PutU32(vid);
    w.PutString(remaining);

    Bytes reply;
    if (vid == kInvalidVolume) {
      ASSIGN_OR_RETURN(reply, CallServer(home_server_, Proc::kResolvePath, w.Take()));
    } else {
      ASSIGN_OR_RETURN(ServerId server, ServerFor(vid));
      ASSIGN_OR_RETURN(reply, CallServer(server, Proc::kResolvePath, w.Take()));
    }

    rpc::Reader r(reply);
    Status st = Status::kOk;
    RETURN_IF_ERROR(r.ReadStatus(&st));
    if (st == Status::kNotCustodian) {
      ASSIGN_OR_RETURN(uint32_t custodian, r.U32());
      (void)custodian;
      ASSIGN_OR_RETURN(vid, r.U32());
      ASSIGN_OR_RETURN(remaining, r.String());
      RETURN_IF_ERROR(VolumeInfoFor(vid, /*refresh=*/true).status());
      continue;
    }
    RETURN_IF_ERROR(st);
    ASSIGN_OR_RETURN(Fid fid, r.FidField());
    ASSIGN_OR_RETURN(VnodeStatus status, vice::ReadVnodeStatus(r));
    cache_.PutStatus(fid, status).origin_server = last_contacted_;
    cache_.Touch(fid, clock_->now());
    name_cache_.insert_or_assign(content::StringInterner::Global().Intern(path), fid);
    return fid;
  }
  return Status::kProtocolError;
}

// --- Whole-file open/close ---------------------------------------------------------------

namespace {

// Accumulates the virtual time an Open() spends, across all return paths.
class OpenTimer {
 public:
  OpenTimer(const sim::Clock* clock, SimTime* sink) : clock_(clock), sink_(sink),
                                                      start_(clock->now()) {}
  ~OpenTimer() { *sink_ += clock_->now() - start_; }

 private:
  const sim::Clock* clock_;
  SimTime* sink_;
  SimTime start_;
};

}  // namespace

Result<Venus::OpenResult> Venus::Open(const std::string& path, bool for_write, bool create) {
  if (!logged_in()) return Status::kAuthFailed;
  stats_.opens += 1;
  OpenTimer timer(clock_, &stats_.open_time_total);

  // Create the file at its custodian (reached when resolution says the name
  // does not exist, either up front or after a stale mapping was dropped).
  auto create_at_custodian = [&]() -> Result<OpenResult> {
    ASSIGN_OR_RETURN(ParentRef ref, ResolveParentOf(path, /*for_update=*/true));
    rpc::Writer w;
    w.PutFid(ref.parent);
    w.PutString(ref.leaf);
    w.PutU32(0644);
    ASSIGN_OR_RETURN(Bytes reply, CallForFid(ref.parent, Proc::kCreateFile, w.Take()));
    rpc::Reader r(reply);
    RETURN_IF_ERROR(rpc::ExpectOk(r));
    ASSIGN_OR_RETURN(Fid fid, r.FidField());
    ASSIGN_OR_RETURN(VnodeStatus status, vice::ReadVnodeStatus(r));

    InvalidateDir(ref.parent);
    name_cache_.insert_or_assign(content::StringInterner::Global().Intern(path), fid);
    CacheEntry& e = cache_.InstallData(fid, status, Bytes{});
    e.origin_server = last_contacted_;
    cache_.Touch(fid, clock_->now());
    cache_.Pin(fid);
    return OpenResult{fid, status, cache_.PathFor(fid)};
  };

  auto resolved = ResolveFinal(path, for_write, /*follow_final=*/true);
  if (!resolved.ok() && resolved.status() == Status::kStaleFid) {
    // A cached name mapping went stale (file replaced); retry once fresh.
    EraseNameMapping(path);
    resolved = ResolveFinal(path, for_write, /*follow_final=*/true);
  }

  if (!resolved.ok()) {
    if (resolved.status() != Status::kNotFound || !create) return resolved.status();
    return create_at_custodian();
  }

  const Fid fid = *resolved;
  bool hit = false;
  auto entry = EnsureData(fid, &hit);
  if (!entry.ok() && entry.status() == Status::kStaleFid) {
    // kStaleFid from the custodian is authoritative: the fid is dead, so the
    // cached parent listing that produced it is stale no matter what lease
    // or callback promise still covers it (a leased directory can outlive a
    // server restart this way). Drop the mapping and untrust the parent
    // directory before re-resolving, so the walk refetches the listing.
    EraseNameMapping(path);
    if (auto parent = ResolveParentOf(path, /*for_update=*/false); parent.ok()) {
      InvalidateDir(parent->parent);
    }
    auto fresh = ResolveFinal(path, for_write, /*follow_final=*/true);
    if (!fresh.ok()) {
      // The refreshed listing no longer carries the name at all.
      if (fresh.status() == Status::kNotFound && create) return create_at_custodian();
      return fresh.status();
    }
    entry = EnsureData(*fresh, &hit);
    if (!entry.ok()) return entry.status();
    if (hit) stats_.cache_hits += 1;
    cache_.Pin(*fresh);
    return OpenResult{*fresh, (*entry)->status, cache_.PathFor(*fresh)};
  }
  if (!entry.ok()) return entry.status();
  if ((*entry)->status.type == vice::VnodeType::kDirectory) return Status::kIsDirectory;
  if (hit) stats_.cache_hits += 1;
  cache_.Pin(fid);
  return OpenResult{fid, (*entry)->status, cache_.PathFor(fid)};
}

Status Venus::Close(const Fid& fid, bool dirty) {
  CacheEntry* e = cache_.Find(fid);
  if (e == nullptr) return Status::kBadDescriptor;
  cache_.Unpin(fid);
  if (!dirty) return Status::kOk;

  if (config_.write_back == VenusConfig::WriteBack::kDeferred) {
    // Queue the store; repeated closes of the same file coalesce.
    if (!e->dirty) {
      e->dirty = true;
      dirty_queue_.push_back(fid);
    }
    auto data = cache_.ReadData(fid);
    if (data.ok()) cache_.NoteLocalSize(fid, data->size());
    if (dirty_queue_.size() >= config_.max_dirty_files) return FlushDirty();
    return Status::kOk;
  }
  return StoreBack(fid);
}

Status Venus::StoreBack(const Fid& fid) {
  // Whole-file store back to the custodian. The intercept layer wrote the
  // cached copy in place, so first resynchronize space accounting.
  ASSIGN_OR_RETURN(Bytes data, cache_.ReadData(fid));
  cache_.NoteLocalSize(fid, data.size());
  clock_->Advance(cost_.LocalIoTime(data.size()));
  auto stored = RpcStore(fid, data);
  if (!stored.ok()) {
    if (stored.status() == Status::kStaleFid) {
      // The fid died under a trusted entry — removed or replaced while a
      // lease outlived the server's knowledge of it (crash, or a break the
      // server waited out). The reply is authoritative: drop the mapping so
      // a retry of the whole operation re-resolves the name.
      if (CacheEntry* dead = cache_.Find(fid); dead != nullptr) {
        if (dead->pin_count > 0) {
          cache_.Invalidate(fid);
        } else {
          cache_.Erase(fid);
        }
      }
    }
    return stored.status();
  }
  const VnodeStatus fresh = *stored;
  CacheEntry* e = cache_.Find(fid);
  if (e != nullptr) {
    e->status = fresh;
    e->valid = true;
    e->origin_server = last_contacted_;
    e->dirty = false;
  }
  DropEvicted(cache_.EnforceLimits());
  return Status::kOk;
}

Status Venus::FlushDirty() {
  Status worst = Status::kOk;
  std::vector<Fid> queue;
  queue.swap(dirty_queue_);
  for (const Fid& fid : queue) {
    CacheEntry* e = cache_.Find(fid);
    if (e == nullptr || !e->dirty) continue;
    if (Status s = StoreBack(fid); s != Status::kOk) {
      worst = s;
      // Keep it queued; a later flush may succeed.
      if (CacheEntry* still = cache_.Find(fid); still != nullptr && still->dirty) {
        dirty_queue_.push_back(fid);
      }
    }
  }
  return worst;
}

void Venus::SimulateCrash() {
  // The machine dies: no flush, no polite disconnect. Pending deferred
  // writes evaporate with the (conceptually volatile) dirty queue; the
  // server eventually notices via its own timeouts — modelled here by the
  // explicit sink unregistration a restart would perform.
  dirty_queue_.clear();
  for (const Fid& fid : cache_.CachedFids()) {
    CacheEntry* e = cache_.Find(fid);
    if (e != nullptr && e->dirty) cache_.Erase(fid);
  }
  Logout();
}

// --- Metadata and name space -----------------------------------------------------------

Result<VnodeStatus> Venus::Stat(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  stats_.stat_calls += 1;

  if (!config_.client_path_traversal) {
    // Prototype: the pathname goes to the server, which replies with status
    // (this is the GetFileStat-style traffic of the Section 5.2 histogram).
    EraseNameMapping(path);
    ASSIGN_OR_RETURN(Fid fid, WalkServer(path));
    const CacheEntry* e = cache_.Find(fid);
    ITC_CHECK(e != nullptr);
    return e->status;
  }

  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/false, /*follow_final=*/true));
  return EnsureStatus(fid);
}

Result<std::vector<std::pair<std::string, DirItem>>> Venus::ReadDir(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/false, /*follow_final=*/true));
  ASSIGN_OR_RETURN(DirMap entries, DirEntriesOf(fid));
  std::vector<std::pair<std::string, DirItem>> out(entries.begin(), entries.end());
  return out;
}

Status Venus::MkDir(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParentOf(path, /*for_update=*/true));
  rpc::Writer w;
  w.PutFid(ref.parent);
  w.PutString(ref.leaf);
  w.PutBytes(Bytes{});  // inherit the parent's access list
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(ref.parent, Proc::kMakeDir, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  InvalidateDir(ref.parent);
  return Status::kOk;
}

Status Venus::Remove(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParentOf(path, /*for_update=*/true));
  rpc::Writer w;
  w.PutFid(ref.parent);
  w.PutString(ref.leaf);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(ref.parent, Proc::kRemoveFile, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  auto it = name_cache_.find(path);
  if (it != name_cache_.end()) {
    // An open handle (pinned entry) keeps using its local copy, Unix-style;
    // only unreferenced cache state is discarded.
    CacheEntry* e = cache_.Find(it->second);
    if (e != nullptr && e->pin_count > 0) {
      cache_.Invalidate(it->second);
    } else {
      cache_.Erase(it->second);
    }
    name_cache_.erase(it);
  }
  InvalidateDir(ref.parent);
  return Status::kOk;
}

Status Venus::RmDir(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParentOf(path, /*for_update=*/true));
  rpc::Writer w;
  w.PutFid(ref.parent);
  w.PutString(ref.leaf);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(ref.parent, Proc::kRemoveDir, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  EraseNameMapping(path);
  InvalidateDir(ref.parent);
  return Status::kOk;
}

Status Venus::Rename(const std::string& from, const std::string& to) {
  if (!logged_in()) return Status::kAuthFailed;

  if (!config_.client_path_traversal) {
    // Prototype shortcoming (Section 5.1): "the inability to rename
    // directories in Vice". Files still rename.
    auto from_fid = ResolveFinal(from, /*for_update=*/true, /*follow_final=*/true);
    if (from_fid.ok()) {
      const CacheEntry* e = cache_.Find(*from_fid);
      if (e != nullptr && e->status.type == vice::VnodeType::kDirectory) {
        return Status::kNotSupported;
      }
    }
  }

  ASSIGN_OR_RETURN(ParentRef src, ResolveParentOf(from, /*for_update=*/true));
  ASSIGN_OR_RETURN(ParentRef dst, ResolveParentOf(to, /*for_update=*/true));
  rpc::Writer w;
  w.PutFid(src.parent);
  w.PutString(src.leaf);
  w.PutFid(dst.parent);
  w.PutString(dst.leaf);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(src.parent, Proc::kRename, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  // Pathname mappings under the old name are now wrong; drop the whole
  // prefix (files keep their fids, so cached data stays useful).
  for (auto it = name_cache_.begin(); it != name_cache_.end();) {
    if (PathHasPrefix(*it->first, from)) {
      it = name_cache_.erase(it);
    } else {
      ++it;
    }
  }
  InvalidateDir(src.parent);
  if (!(src.parent == dst.parent)) InvalidateDir(dst.parent);
  return Status::kOk;
}

Status Venus::Symlink(const std::string& target, const std::string& link_path) {
  if (!logged_in()) return Status::kAuthFailed;
  if (!config_.client_path_traversal) {
    // Prototype shortcoming (Section 5.1): "Vice does not support symbolic
    // links" (links from the local space into Vice are Virtue's business).
    return Status::kNotSupported;
  }
  ASSIGN_OR_RETURN(ParentRef ref, ResolveParentOf(link_path, /*for_update=*/true));
  rpc::Writer w;
  w.PutFid(ref.parent);
  w.PutString(ref.leaf);
  w.PutString(target);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(ref.parent, Proc::kMakeSymlink, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  InvalidateDir(ref.parent);
  return Status::kOk;
}

Result<std::string> Venus::ReadLink(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  if (!config_.client_path_traversal) return Status::kNotSupported;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/false, /*follow_final=*/false));
  bool hit = false;
  ASSIGN_OR_RETURN(CacheEntry * e, EnsureData(fid, &hit));
  if (e->status.type != vice::VnodeType::kSymlink) return Status::kNotSymlink;
  ASSIGN_OR_RETURN(Bytes data, cache_.ReadData(fid));
  return ToString(data);
}

Status Venus::SetMode(const std::string& path, uint16_t mode) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/true, /*follow_final=*/true));
  rpc::Writer w;
  w.PutFid(fid);
  w.PutBool(true);
  w.PutU32(mode);
  w.PutBool(false);
  w.PutU32(0);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kSetStatus, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(VnodeStatus fresh, vice::ReadVnodeStatus(r));
  CacheEntry* e = cache_.Find(fid);
  if (e != nullptr) e->status = fresh;
  return Status::kOk;
}

Result<protection::AccessList> Venus::GetAcl(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/false, /*follow_final=*/true));
  rpc::Writer w;
  w.PutFid(fid);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kGetAcl, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  ASSIGN_OR_RETURN(Bytes acl_bytes, r.BytesField());
  return protection::AccessList::Deserialize(acl_bytes);
}

Status Venus::SetAcl(const std::string& path, const protection::AccessList& acl) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/true, /*follow_final=*/true));
  rpc::Writer w;
  w.PutFid(fid);
  w.PutBytes(acl.Serialize());
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kSetAcl, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status Venus::SetLock(const std::string& path, vice::LockMode mode) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/false, /*follow_final=*/true));
  rpc::Writer w;
  w.PutFid(fid);
  w.PutU8(static_cast<uint8_t>(mode));
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kSetLock, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Status Venus::ReleaseLock(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/false, /*follow_final=*/true));
  rpc::Writer w;
  w.PutFid(fid);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kReleaseLock, w.Take()));
  rpc::Reader r(reply);
  return rpc::ExpectOk(r);
}

Result<Venus::VolumeStatus> Venus::GetVolumeStatus(const std::string& path) {
  if (!logged_in()) return Status::kAuthFailed;
  ASSIGN_OR_RETURN(Fid fid, ResolveFinal(path, /*for_update=*/false, /*follow_final=*/true));
  rpc::Writer w;
  w.PutU32(fid.volume);
  ASSIGN_OR_RETURN(Bytes reply, CallForFid(fid, Proc::kGetVolumeStatus, w.Take()));
  rpc::Reader r(reply);
  RETURN_IF_ERROR(rpc::ExpectOk(r));
  VolumeStatus out;
  out.volume = fid.volume;
  ASSIGN_OR_RETURN(out.quota_bytes, r.U64());
  ASSIGN_OR_RETURN(out.usage_bytes, r.U64());
  ASSIGN_OR_RETURN(out.read_only, r.Bool());
  ASSIGN_OR_RETURN(out.online, r.Bool());
  return out;
}

// --- Cache management -------------------------------------------------------------------

void Venus::FlushCache() {
  // Deferred writes are flushed, not discarded; only a crash loses them.
  if (!dirty_queue_.empty()) (void)FlushDirty();
  dirty_queue_.clear();
  for (const Fid& fid : cache_.CachedFids()) cache_.Erase(fid);
  name_cache_.clear();
  // Location knowledge is cached as hints; a flush drops those too, so the
  // next resolution sees e.g. a newly released read-only clone.
  volume_hints_.clear();
  root_volume_ = kInvalidVolume;
  // Surrender all callback promises and leases directly (administrative
  // path).
  for (auto& [sid, conn] : connections_) {
    auto it = servers_->find(sid);
    if (it == servers_->end()) continue;
    it->second->callbacks().UnregisterAll(this);
    it->second->leases().ReleaseAll(this);
  }
}

void Venus::ResetStats() {
  stats_ = VenusStats{};
  call_stats_.Reset();
}

void Venus::OnCallbackBroken(const Fid& fid) {
  stats_.callback_breaks_received += 1;
  CacheEntry* e = cache_.Find(fid);
  if (e != nullptr) e->lease_expiry = 0;  // a broken lease confers no trust
  cache_.Invalidate(fid);
}

}  // namespace itc::venus
