// Venus: the workstation cache manager (Sections 3.2, 3.5.1).
//
// "Virtue is implemented in two parts: a set of modifications to the
//  workstation operating system to intercept file requests, and a user-level
//  process, called Venus. Venus handles management of the cache,
//  communication with Vice and the emulation of native file system
//  primitives for Vice files."
//
// Venus caches entire files, their status, and custodianship information.
// On open it locates the custodian, fetches the file into the local cache if
// necessary, and hands the intercept layer a local path; reads and writes
// never touch Vice. On close of a dirty file the whole file is stored back
// to the custodian ("we have adopted this approach in order to simplify
// recovery from workstation crashes").
//
// Both client generations are supported via VenusConfig:
//   * check-on-open vs callback validation,
//   * server-side (prototype) vs client-side (revised) pathname traversal,
//   * count-limited vs space-limited cache.
//
// Paths given to Venus are Vice-internal: "/" is the root of the shared name
// space (the root volume's root directory). Virtue maps "/vice/..." here.

#ifndef SRC_VENUS_VENUS_H_
#define SRC_VENUS_VENUS_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/fid.h"
#include "src/common/ownership.h"
#include "src/common/result.h"
#include "src/common/types.h"
#include "src/crypto/key.h"
#include "src/net/network.h"
#include "src/protection/access_list.h"
#include "src/rpc/rpc.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/unixfs/file_system.h"
#include "src/venus/config.h"
#include "src/venus/file_cache.h"
#include "src/venus/stats.h"
#include "src/venus/validation/validation_policy.h"
#include "src/vice/file_server.h"
#include "src/vice/lock_manager.h"
#include "src/vice/protocol.h"

namespace itc::venus {

// How workstations find Vice servers (in-process stand-in for network
// addressing: the ServerId -> endpoint directory).
using ServerMap = std::map<ServerId, vice::ViceServer*>;

class Venus : public vice::CallbackReceiver, private validation::ValidationHost {
 public:
  Venus(NodeId node, sim::Clock* clock, unixfs::FileSystem* local_fs,
        const std::string& cache_dir, VenusConfig config, const ServerMap* servers,
        ServerId home_server, net::Network* network, const sim::CostModel& cost,
        uint64_t seed);
  ~Venus() override;

  Venus(const Venus&) = delete;
  Venus& operator=(const Venus&) = delete;

  // --- Session ---------------------------------------------------------------
  // Authenticates this workstation to Vice on behalf of `user`. The key is
  // derived from the user's password (crypto::DeriveKeyFromPassword); the
  // password itself never reaches Venus.
  ITC_KERNEL_ENTRY [[nodiscard]] Status Login(UserId user, const crypto::Key& user_key);
  // Ends the session: connections dropped, callback promises surrendered.
  // Cached data survives (revalidated on next use).
  ITC_KERNEL_ENTRY void Logout();
  ITC_KERNEL_QUIESCENT UserId user() const { return user_; }
  ITC_KERNEL_QUIESCENT bool logged_in() const { return user_ != kAnonymousUser; }

  // --- Whole-file open/close ---------------------------------------------------
  struct OpenResult {
    Fid fid;
    vice::VnodeStatus status;
    std::string cache_path;  // local path of the cached copy
  };

  // Opens a Vice file. for_write selects the read-write volume even when a
  // read-only replica exists. create makes the file (parent needs Insert).
  // The returned cache_path is a local file the caller reads/writes; the
  // entry stays pinned until Close.
  ITC_KERNEL_ENTRY [[nodiscard]] Result<OpenResult> Open(const std::string& path, bool for_write, bool create);

  // Closes an open file. If `dirty`, the cached copy is stored back to the
  // custodian immediately ("Virtue stores a file back when it is closed") —
  // or queued, under the deferred write-back policy.
  ITC_KERNEL_ENTRY [[nodiscard]] Status Close(const Fid& fid, bool dirty);

  // Deferred write-back only: stores every queued dirty file now. Called
  // automatically on logout and when the dirty queue fills.
  ITC_KERNEL_ENTRY [[nodiscard]] Status FlushDirty();
  ITC_KERNEL_QUIESCENT size_t dirty_count() const { return dirty_queue_.size(); }

  // Simulates a workstation crash: the session drops WITHOUT flushing
  // deferred writes — they are lost, which is precisely why the paper chose
  // store-on-close. (With the on-close policy nothing is pending to lose.)
  ITC_KERNEL_QUIESCENT void SimulateCrash();

  // --- Metadata and name space ---------------------------------------------------
  ITC_KERNEL_ENTRY [[nodiscard]] Result<vice::VnodeStatus> Stat(const std::string& path);
  ITC_KERNEL_ENTRY [[nodiscard]] Result<std::vector<std::pair<std::string, vice::DirItem>>> ReadDir(const std::string& path);
  ITC_KERNEL_ENTRY [[nodiscard]] Status MkDir(const std::string& path);
  ITC_KERNEL_ENTRY [[nodiscard]] Status Remove(const std::string& path);
  ITC_KERNEL_ENTRY [[nodiscard]] Status RmDir(const std::string& path);
  ITC_KERNEL_ENTRY [[nodiscard]] Status Rename(const std::string& from, const std::string& to);
  ITC_KERNEL_ENTRY [[nodiscard]] Status Symlink(const std::string& target, const std::string& link_path);
  ITC_KERNEL_ENTRY [[nodiscard]] Result<std::string> ReadLink(const std::string& path);
  ITC_KERNEL_ENTRY [[nodiscard]] Status SetMode(const std::string& path, uint16_t mode);

  ITC_KERNEL_ENTRY [[nodiscard]] Result<protection::AccessList> GetAcl(const std::string& path);
  ITC_KERNEL_ENTRY [[nodiscard]] Status SetAcl(const std::string& path, const protection::AccessList& acl);

  ITC_KERNEL_ENTRY [[nodiscard]] Status SetLock(const std::string& path, vice::LockMode mode);
  ITC_KERNEL_ENTRY [[nodiscard]] Status ReleaseLock(const std::string& path);

  // Quota/usage of the volume holding `path` (the `df` of the shared space;
  // quota enforcement is Section 3.6's "restrict and account for the usage
  // of shared resources").
  struct VolumeStatus {
    VolumeId volume = kInvalidVolume;
    uint64_t quota_bytes = 0;  // 0 = unlimited
    uint64_t usage_bytes = 0;
    bool read_only = false;
    bool online = true;
  };
  ITC_KERNEL_ENTRY [[nodiscard]] Result<VolumeStatus> GetVolumeStatus(const std::string& path);

  // --- Cache management ------------------------------------------------------------
  // Drops the entire cache (surrendering callback promises).
  ITC_KERNEL_QUIESCENT void FlushCache();
  ITC_KERNEL_QUIESCENT FileCache& cache() { return cache_; }
  ITC_KERNEL_QUIESCENT const VenusStats& stats() const { return stats_; }
  // Client-observed per-op round trips (recorded by the stub's tracing
  // interceptor, including retries).
  ITC_KERNEL_QUIESCENT const rpc::CallStats& call_stats() const { return call_stats_; }
  ITC_KERNEL_QUIESCENT void ResetStats();

  NodeId node() const { return node_; }

  // --- VFS escape hatch ------------------------------------------------------
  // Client-side traversal may meet an absolute symlink whose target lies
  // outside the shared name space (e.g. "/tmp/scratch" — Figure 3-2 in
  // reverse). The predicate decides whether a target escapes; when it does,
  // the walk stops, the unconsumed components are spliced onto the target,
  // and the call fails with kSymlinkEscape. The VFS switch collects the
  // rewritten workstation path with TakeEscapePath() and re-resolves it
  // against the mount table. Without a predicate every absolute target is
  // treated as Vice-internal (the pre-VFS behaviour). Server-side traversal
  // (the prototype) never escapes: the server has no notion of workstation
  // mounts.
  using EscapePredicate = std::function<bool(const std::string& target)>;
  void set_escape_predicate(EscapePredicate p) { escape_predicate_ = std::move(p); }
  // The rewritten path after a kSymlinkEscape failure; consumes it.
  ITC_KERNEL_ENTRY std::string TakeEscapePath() { return std::move(escape_path_); }

  // vice::CallbackReceiver:
  ITC_KERNEL_ENTRY void OnCallbackBroken(const Fid& fid) override;
  NodeId callback_node() const override { return node_; }

 private:
  struct ParentRef {
    Fid parent;        // directory containing the final component
    std::string leaf;  // final component name
  };

  // --- RPC plumbing -------------------------------------------------------------
  [[nodiscard]] Result<rpc::ClientConnection*> ConnectionTo(ServerId server);
  // A server provably restarted (epoch bump / broken connection): every
  // promise it held — open-ended callback or lease alike — died with its
  // volatile state. Mark every cache entry it supplied suspect so the next
  // use revalidates (check-on-open fallback).
  void MarkServerSuspect(ServerId server);
  // A server could not be reached (site down, link partition). Callback
  // promises must be distrusted (the server may have crashed and we cannot
  // tell); a lease keeps its own horizon — the server waits out unreachable
  // holders before completing writes, so trusting it until expiry is safe.
  void NoteServerUnreachable(ServerId server);
  [[nodiscard]] Result<Bytes> CallServer(ServerId server, vice::Proc proc, const Bytes& request);
  // Calls the custodian (or nearest replica) for `fid`; transparently
  // refreshes stale location hints on kNotCustodian and retries once.
  [[nodiscard]] Result<Bytes> CallForFid(const Fid& fid, vice::Proc proc, const Bytes& request);

  // --- Location ---------------------------------------------------------------------
  [[nodiscard]] Result<VolumeId> RootVolume();
  [[nodiscard]] Result<vice::VolumeInfo> VolumeInfoFor(VolumeId volume, bool refresh);
  // Server to contact for this volume: nearest read-only replica site for RO
  // volumes, else the custodian.
  [[nodiscard]] Result<ServerId> ServerFor(VolumeId volume);
  // All servers that can satisfy requests for this volume, in preference
  // order (nearest replica first). Read-only replication "enhances
  // availability": when a site is down, the next one is tried.
  [[nodiscard]] Result<std::vector<ServerId>> ServerCandidates(VolumeId volume);
  // Volume to traverse into: the released RO clone when one exists and the
  // access does not require write.
  [[nodiscard]] Result<VolumeId> ChooseVolume(VolumeId volume, bool for_update);

  // --- Resolution ---------------------------------------------------------------------
  // Resolves a path to its final fid. follow_final controls trailing-symlink
  // behaviour (lstat-style when false; client-side traversal only).
  [[nodiscard]] Result<Fid> ResolveFinal(const std::string& path, bool for_update, bool follow_final);
  // Resolves the directory containing a path's final component.
  [[nodiscard]] Result<ParentRef> ResolveParentOf(const std::string& path, bool for_update);
  // Drops one name_cache_ mapping. Keys are interned shared_ptrs and C++20
  // map::erase has no heterogeneous overload, so this goes through the
  // transparent find.
  void EraseNameMapping(std::string_view path);
  [[nodiscard]] Result<Fid> WalkClient(const std::string& path, bool for_update, bool follow_final);
  // Rebrands a fid resolved through a read-only clone back to its read-write
  // volume when the access requires write; identity otherwise. The walk
  // localizes every directory hop, so only the final object pays this.
  [[nodiscard]] Result<Fid> MapForUpdate(Fid fid, bool for_update);
  [[nodiscard]] Result<Fid> WalkServer(const std::string& path);

  // --- Cache core ------------------------------------------------------------------------
  // Ensures a valid cached copy of `fid`'s data (fetching or validating as
  // the configuration demands); returns the entry. `hit` reports whether a
  // Fetch was avoided.
  [[nodiscard]] Result<CacheEntry*> EnsureData(const Fid& fid, bool* hit);
  // Ensures valid cached status for `fid`.
  [[nodiscard]] Result<vice::VnodeStatus> EnsureStatus(const Fid& fid);
  [[nodiscard]] Result<vice::DirMap> DirEntriesOf(const Fid& dir);
  void DropEvicted(const std::vector<Fid>& evicted);
  void InvalidateDir(const Fid& dir);
  // Stores the cached copy of `fid` to its custodian now.
  [[nodiscard]] Status StoreBack(const Fid& fid);

  // --- RPC wrappers -------------------------------------------------------------------------
  // Fetch wrappers also consume the lease grant piggybacked on the reply in
  // lease mode (stashed in last_lease_expiry_ for the policy's OnFetched).
  [[nodiscard]] Result<vice::VnodeStatus> RpcFetch(const Fid& fid, Bytes* data);
  [[nodiscard]] Result<vice::VnodeStatus> RpcFetchStatus(const Fid& fid);
  [[nodiscard]] Result<vice::VnodeStatus> RpcStore(const Fid& fid, const Bytes& data);

  // --- validation::ValidationHost (the policy's window into Venus) ----------
  [[nodiscard]] Result<Bytes> CallFid(const Fid& fid, vice::Proc proc,
                                      const Bytes& request) override {
    return CallForFid(fid, proc, request);
  }
  ITC_KERNEL_ENTRY FileCache& entry_cache() override { return cache_; }
  ITC_KERNEL_ENTRY VenusStats& venus_stats() override { return stats_; }
  const VenusConfig& venus_config() const override { return config_; }
  ITC_KERNEL_ENTRY ServerId last_contacted() const override { return last_contacted_; }
  ITC_KERNEL_ENTRY SimTime last_lease_expiry() const override { return last_lease_expiry_; }

  NodeId node_;
  sim::Clock* clock_;
  unixfs::FileSystem* local_fs_;
  VenusConfig config_;
  const ServerMap* servers_;
  ServerId home_server_;
  net::Network* network_;
  sim::CostModel cost_;
  uint64_t seed_;

  ITC_OWNED_BY_SHARD UserId user_ = kAnonymousUser;
  crypto::Key user_key_;
  ITC_OWNED_BY_SHARD std::map<ServerId, std::unique_ptr<rpc::ClientConnection>> connections_;
  // Last restart epoch observed per server (ProbeEpoch on each fresh
  // connection, callback mode only). A bump between connections means the
  // server crashed while we were not looking.
  ITC_OWNED_BY_SHARD std::map<ServerId, uint32_t> server_epochs_;
  // Server that answered the most recent successful call (stamps the cache
  // entry it produced).
  ITC_OWNED_BY_SHARD ServerId last_contacted_ = kInvalidServer;
  // Lease expiry carried by the most recent Fetch/FetchStatus reply.
  ITC_OWNED_BY_SHARD SimTime last_lease_expiry_ = 0;
  // The scheme-specific half of cache validation (src/venus/validation/).
  std::unique_ptr<validation::ValidationPolicy> policy_;

  ITC_OWNED_BY_SHARD FileCache cache_;
  ITC_OWNED_BY_SHARD std::map<VolumeId, vice::VolumeInfo> volume_hints_;
  ITC_OWNED_BY_SHARD VolumeId root_volume_ = kInvalidVolume;
  // Prototype name cache: full Vice path -> fid (filled by ResolvePath).
  // Keys are interned through content::StringInterner — thousands of Venus
  // instances cache the same "/unix/..." paths, so each distinct path costs
  // one heap string campus-wide instead of one per client. The comparator is
  // transparent so lookups take a string_view without allocating.
  struct InternedPathLess {
    using is_transparent = void;
    bool operator()(const std::shared_ptr<const std::string>& a,
                    const std::shared_ptr<const std::string>& b) const {
      return *a < *b;
    }
    bool operator()(const std::shared_ptr<const std::string>& a, std::string_view b) const {
      return *a < b;
    }
    bool operator()(std::string_view a, const std::shared_ptr<const std::string>& b) const {
      return a < *b;
    }
  };
  ITC_OWNED_BY_SHARD std::map<std::shared_ptr<const std::string>, Fid, InternedPathLess>
      name_cache_;
  // Deferred write-back queue (insertion order; duplicates coalesce).
  ITC_OWNED_BY_SHARD std::vector<Fid> dirty_queue_;

  EscapePredicate escape_predicate_;
  ITC_OWNED_BY_SHARD std::string escape_path_;

  ITC_OWNED_BY_SHARD VenusStats stats_;
  ITC_OWNED_BY_SHARD rpc::CallStats call_stats_;
};

}  // namespace itc::venus

#endif  // SRC_VENUS_VENUS_H_
