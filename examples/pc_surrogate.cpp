// Low-function workstations via the surrogate server (Section 3.3).
//
// An IBM-PC-class machine cannot run Venus or hold a whole-file cache, but
// it can speak a simple file protocol to a surrogate running on a full
// Virtue workstation — and thereby reach the entire shared name space.

#include <cstdio>

#include "src/campus/campus.h"
#include "src/virtue/surrogate.h"

using namespace itc;

int main() {
  campus::Campus campus(campus::CampusConfig::Revised(1, 3));
  if (!campus.SetupRootVolume().ok()) return 1;
  auto user = campus.AddUserWithHome("pcowner", "floppy", 0);
  if (!user.ok()) return 1;

  // Workstation 0 is the surrogate host: a full Virtue machine, logged in.
  auto& host = campus.workstation(0);
  if (host.LoginWithPassword(user->user, "floppy") != Status::kOk) return 1;

  const auto key = crypto::DeriveKeyFromPassword("floppy", "itc.cmu.edu");
  virtue::SurrogateServer surrogate(
      &host, &campus.network(), campus.config().cost, campus.config().rpc,
      [&](UserId u) -> std::optional<crypto::Key> {
        if (u == user->user) return key;
        return std::nullopt;
      },
      4242);
  std::printf("surrogate server up on workstation node %u\n", host.node());

  // The PC connects (authenticated + encrypted, like everything else).
  sim::Clock pc_clock;
  virtue::PcClient pc(campus.topology().WorkstationNode(0, 1), &pc_clock, &surrogate,
                      &campus.network(), campus.config().cost);
  if (pc.Connect(user->user, key, 7) != Status::kOk) {
    std::printf("PC failed to connect\n");
    return 1;
  }

  // The PC writes into Vice through the surrogate.
  if (pc.WriteFile("/vice/usr/pcowner/budget.wk1", ToBytes("A1: 123\nA2: 456\n")) !=
      Status::kOk) {
    return 1;
  }
  std::printf("PC stored a spreadsheet into /vice/usr/pcowner\n");

  // Anyone on a real workstation sees it immediately.
  auto& ws = campus.workstation(2);
  if (ws.LoginWithPassword(user->user, "floppy") != Status::kOk) return 1;
  auto data = ws.ReadWholeFile("/vice/usr/pcowner/budget.wk1");
  std::printf("full workstation reads it back: %zu bytes\n", data.ok() ? data->size() : 0);

  // Re-reads by the PC ride the host's whole-file cache: no Vice traffic.
  const uint64_t fetches_before = host.venus().stats().fetches;
  if (!pc.ReadFile("/vice/usr/pcowner/budget.wk1").ok()) return 1;
  if (!pc.ReadFile("/vice/usr/pcowner/budget.wk1").ok()) return 1;
  std::printf("host Venus fetches during two PC re-reads: %llu (served from cache)\n",
              static_cast<unsigned long long>(host.venus().stats().fetches -
                                              fetches_before));

  auto listing = pc.ReadDir("/vice/usr/pcowner");
  std::printf("PC lists its home:");
  for (const auto& name : *listing) std::printf(" %s", name.c_str());
  std::printf("\nPC virtual time used: %.3f s\n", ToSeconds(pc_clock.now()));
  return 0;
}
