// User mobility and protection: a faculty member's day across campus.
//
// Demonstrates Section 3.1/3.4 end to end: a user's files are custodian-ed
// near her office, yet she can work from any workstation on campus; sharing
// is controlled by access lists with groups and negative rights; a volume
// move re-homes her files when she changes buildings.

#include <cstdio>

#include "src/campus/campus.h"

using namespace itc;
using protection::Principal;

int main() {
  campus::Campus campus(campus::CampusConfig::Revised(/*clusters=*/2, 4));
  if (!campus.SetupRootVolume().ok()) return 1;

  auto prof = campus.AddUserWithHome("prof", "tenure", /*custodian=*/0);
  auto student = campus.AddUserWithHome("student", "ramen", /*custodian=*/1);
  if (!prof.ok() || !student.ok()) return 1;

  // A research group, Grapevine-style: the student belongs to a group that
  // belongs to the course staff.
  auto group = campus.protection().CreateGroup("cs-groupX");
  if (campus.protection().AddToGroup(Principal::User(student->user), *group) !=
      Status::kOk) {
    return 1;
  }

  // The professor works in her office (cluster 0).
  auto& office = campus.workstation(0);
  if (office.LoginWithPassword(prof->user, "tenure") != Status::kOk) return 1;
  if (office.MkDir("/vice/usr/prof/paper") != Status::kOk) return 1;
  if (office.WriteWholeFile("/vice/usr/prof/paper/draft.tex",
                            ToBytes("\\section{Intro}")) != Status::kOk) {
    return 1;
  }

  // Grant the research group read access to the paper directory.
  auto acl = office.venus().GetAcl("/usr/prof/paper");
  acl->SetPositive(Principal::Group(*group),
                   protection::kLookup | protection::kRead);
  if (office.venus().SetAcl("/usr/prof/paper", *acl) != Status::kOk) return 1;
  std::printf("granted cs-groupX lookup+read on /usr/prof/paper\n");

  // The student, in the other cluster, reads the draft.
  auto& dorm = campus.workstation(5);
  if (dorm.LoginWithPassword(student->user, "ramen") != Status::kOk) return 1;
  auto draft = dorm.ReadWholeFile("/vice/usr/prof/paper/draft.tex");
  std::printf("student reads draft: %s -> %zu bytes\n",
              draft.ok() ? "ok" : StatusName(draft.status()).data(),
              draft.ok() ? draft->size() : 0);

  // ...but cannot modify it.
  auto denied = dorm.WriteWholeFile("/vice/usr/prof/paper/draft.tex", ToBytes("hax"));
  std::printf("student write attempt: %s\n", StatusName(denied).data());

  // Rapid revocation via negative rights: the student misbehaves; one ACL
  // edit at one site revokes him everywhere, without touching the
  // replicated protection database.
  acl = office.venus().GetAcl("/usr/prof/paper");
  acl->SetNegative(Principal::User(student->user), protection::kRead);
  if (office.venus().SetAcl("/usr/prof/paper", *acl) != Status::kOk) return 1;
  dorm.venus().FlushCache();  // drop his cached copy too
  auto revoked = dorm.ReadWholeFile("/vice/usr/prof/paper/draft.tex");
  std::printf("after negative right, student read: %s\n",
              StatusName(revoked.status()).data());

  // The professor lectures across campus: any workstation works, with only a
  // cache-warming penalty ("an initial performance penalty as the cache on
  // the new workstation is filled").
  auto& lecture_hall = campus.workstation(6);  // cluster 1
  if (lecture_hall.LoginWithPassword(prof->user, "tenure") != Status::kOk) return 1;
  const SimTime t0 = lecture_hall.clock().now();
  if (!lecture_hall.ReadWholeFile("/vice/usr/prof/paper/draft.tex").ok()) return 1;
  const SimTime cold = lecture_hall.clock().now() - t0;
  const SimTime t1 = lecture_hall.clock().now();
  if (!lecture_hall.ReadWholeFile("/vice/usr/prof/paper/draft.tex").ok()) return 1;
  const SimTime warm = lecture_hall.clock().now() - t1;
  std::printf("lecture hall: cold open %.1f ms, warm open %.1f ms\n",
              static_cast<double>(cold) / 1000.0, static_cast<double>(warm) / 1000.0);

  // The professor moves to the new wing (cluster 1): operations re-home her
  // volume to the cluster server there. Her name space is unchanged.
  auto moved = campus.registry().MoveVolume(prof->volume, /*new_custodian=*/1);
  std::printf("volume move to cluster 1: %s\n", StatusName(moved).data());
  auto after_move = lecture_hall.ReadWholeFile("/vice/usr/prof/paper/draft.tex");
  std::printf("read after move: %s\n", after_move.ok() ? "ok" : "failed");
  return 0;
}
