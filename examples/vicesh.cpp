// vicesh — an interactive shell over a simulated campus.
//
// Spins up a two-cluster campus with a couple of users and drops you at a
// prompt on workstation 0. Useful for poking at the system by hand:
//
//   $ ./build/examples/vicesh
//   vicesh> login alice rosebud
//   vicesh> put /vice/usr/alice/hi.txt hello world
//   vicesh> cat /vice/usr/alice/hi.txt
//   vicesh> ws 3          (move to another workstation — user mobility)
//   vicesh> cat /vice/usr/alice/hi.txt
//   vicesh> stats
//
// Reads commands from stdin; runs a scripted demo when stdin is not a TTY
// and no commands arrive.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/campus/campus.h"

using namespace itc;

namespace {

void Help() {
  std::printf(
      "commands:\n"
      "  login <user> <password>   authenticate on the current workstation\n"
      "  logout                    end the session\n"
      "  ws <index>                switch to another workstation\n"
      "  ls <path>                 list a directory\n"
      "  cat <path>                print a file\n"
      "  put <path> <text...>      write a file\n"
      "  rm <path> | mkdir <path> | mv <from> <to> | stat <path>\n"
      "  df <path>                 quota/usage of the volume holding path\n"
      "  flush                     drop the Venus cache\n"
      "  stats                     Venus statistics for this workstation\n"
      "  time                      virtual clock of this workstation\n"
      "  quit\n");
}

}  // namespace

int main() {
  campus::Campus campus(campus::CampusConfig::Revised(2, 4));
  if (!campus.SetupRootVolume().ok()) return 1;
  auto alice = campus.AddUserWithHome("alice", "rosebud", 0);
  auto bob = campus.AddUserWithHome("bob", "sekrit", 1);
  if (!alice.ok() || !bob.ok()) return 1;

  std::printf("campus: %s\n", campus.topology().Describe().c_str());
  std::printf("users: alice/rosebud (home cluster 0), bob/sekrit (home cluster 1)\n");
  std::printf("type 'help' for commands\n");

  size_t current = 0;
  std::string line;
  std::printf("vicesh[ws%zu]> ", current);
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    auto& ws = campus.workstation(current);

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd.empty()) {
    } else if (cmd == "help") {
      Help();
    } else if (cmd == "login") {
      std::string user, pw;
      in >> user >> pw;
      auto uid = campus.protection().db().LookupUser(user);
      if (!uid.ok()) {
        std::printf("no such user\n");
      } else {
        std::printf("%s\n", StatusName(ws.LoginWithPassword(*uid, pw)).data());
      }
    } else if (cmd == "logout") {
      ws.Logout();
    } else if (cmd == "ws") {
      size_t idx = current;
      in >> idx;
      if (idx < campus.workstation_count()) {
        current = idx;
      } else {
        std::printf("workstations: 0..%zu\n", campus.workstation_count() - 1);
      }
    } else if (cmd == "ls") {
      std::string path = "/";
      in >> path;
      auto names = ws.ReadDir(path);
      if (!names.ok()) {
        std::printf("%s\n", StatusName(names.status()).data());
      } else {
        for (const auto& n : *names) std::printf("%s  ", n.c_str());
        std::printf("\n");
      }
    } else if (cmd == "cat") {
      std::string path;
      in >> path;
      auto data = ws.ReadWholeFile(path);
      if (!data.ok()) {
        std::printf("%s\n", StatusName(data.status()).data());
      } else {
        std::fwrite(data->data(), 1, data->size(), stdout);
        std::printf("\n");
      }
    } else if (cmd == "put") {
      std::string path, rest;
      in >> path;
      std::getline(in, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      std::printf("%s\n", StatusName(ws.WriteWholeFile(path, ToBytes(rest))).data());
    } else if (cmd == "rm") {
      std::string path;
      in >> path;
      std::printf("%s\n", StatusName(ws.Unlink(path)).data());
    } else if (cmd == "mkdir") {
      std::string path;
      in >> path;
      std::printf("%s\n", StatusName(ws.MkDir(path)).data());
    } else if (cmd == "mv") {
      std::string from, to;
      in >> from >> to;
      std::printf("%s\n", StatusName(ws.Rename(from, to)).data());
    } else if (cmd == "stat") {
      std::string path;
      in >> path;
      auto info = ws.Stat(path);
      if (!info.ok()) {
        std::printf("%s\n", StatusName(info.status()).data());
      } else {
        std::printf("%s, %llu bytes, mode %o, %s\n",
                    info->type == virtue::FileInfo::Type::kDirectory ? "directory"
                    : info->type == virtue::FileInfo::Type::kSymlink ? "symlink"
                                                                     : "file",
                    static_cast<unsigned long long>(info->size), info->mode,
                    info->shared ? "shared (Vice)" : "local");
      }
    } else if (cmd == "df") {
      std::string path = "/vice/usr";
      in >> path;
      // Venus speaks Vice-internal paths; strip the mount prefix.
      if (path.rfind("/vice", 0) == 0) path = path.substr(5);
      // push_back, not `= "/"`: dodges GCC 12's -Wrestrict false positive
      // (PR105329) on assigning a literal to a just-mutated string.
      if (path.empty()) path.push_back('/');
      auto vs = ws.venus().GetVolumeStatus(path);
      if (!vs.ok()) {
        std::printf("%s\n", StatusName(vs.status()).data());
      } else {
        std::printf("volume %u: %llu used", vs->volume,
                    static_cast<unsigned long long>(vs->usage_bytes));
        if (vs->quota_bytes > 0) {
          std::printf(" of %llu (%.0f%%)",
                      static_cast<unsigned long long>(vs->quota_bytes),
                      100.0 * static_cast<double>(vs->usage_bytes) /
                          static_cast<double>(vs->quota_bytes));
        } else {
          std::printf(", no quota");
        }
        std::printf("%s%s\n", vs->read_only ? ", read-only" : "",
                    vs->online ? "" : ", OFFLINE");
      }
    } else if (cmd == "flush") {
      ws.venus().FlushCache();
      std::printf("cache flushed\n");
    } else if (cmd == "stats") {
      const auto& s = ws.venus().stats();
      std::printf("opens=%llu hits=%llu (%.1f%%) fetches=%llu stores=%llu "
                  "validations=%llu callbacks-received=%llu\n",
                  static_cast<unsigned long long>(s.opens),
                  static_cast<unsigned long long>(s.cache_hits), 100.0 * s.HitRatio(),
                  static_cast<unsigned long long>(s.fetches),
                  static_cast<unsigned long long>(s.stores),
                  static_cast<unsigned long long>(s.validations),
                  static_cast<unsigned long long>(s.callback_breaks_received));
    } else if (cmd == "time") {
      std::printf("%.3f s virtual\n", ToSeconds(ws.clock().now()));
    } else {
      std::printf("unknown command (try 'help')\n");
    }
    std::printf("vicesh[ws%zu]> ", current);
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
