// Software release: the read-only replication workflow of Section 3.2/5.3.
//
// System binaries live in a read-write volume owned by the administrators.
// A release clones the volume (copy-on-write) and installs frozen read-only
// replicas at every cluster server; workstations transparently fetch
// binaries from the replica in their own cluster. Releasing a new version is
// atomic: the location database flips to the new clone while the old one
// remains as a frozen, coexisting version.

#include <cstdio>

#include "src/campus/campus.h"
#include "src/workload/populate.h"

using namespace itc;

int main() {
  // Three clusters; binaries are custodian-ed by server 0.
  campus::Campus campus(campus::CampusConfig::Revised(3, 4));
  std::printf("campus: %s\n", campus.topology().Describe().c_str());
  if (!campus.SetupRootVolume().ok()) return 1;

  auto sysvol = campus.CreateSystemVolume("sys.sun", "/unix/sun", /*custodian=*/0);
  auto user = campus.AddUserWithHome("grad", "pw", /*custodian=*/2);
  if (!sysvol.ok() || !user.ok()) return 1;

  // Version 1 of the compiler suite.
  if (campus.PopulateDirect(*sysvol, "/bin/cc", ToBytes("cc v1")) != Status::kOk ||
      campus.PopulateDirect(*sysvol, "/bin/ld", ToBytes("ld v1")) != Status::kOk) {
    return 1;
  }

  // Release read-only replicas at all three cluster servers.
  auto ro1 = campus.registry().ReleaseReadOnly(*sysvol, "sys.sun.ro-1985-10", {0, 1, 2});
  if (!ro1.ok()) return 1;
  std::printf("released clone volume %u at 3 sites\n", *ro1);

  // A student in cluster 2 runs the compiler; the fetch is served by the
  // local cluster's replica — no bridge crossings.
  auto& ws = campus.workstation(9);  // cluster 2
  if (ws.LoginWithPassword(user->user, "pw") != Status::kOk) return 1;
  campus.network().ResetStats();
  auto cc = ws.ReadWholeFile("/bin/cc");  // /bin -> /vice/unix/sun/bin
  std::printf("ran %s; cross-cluster fetches for the binary itself: ", "cc v1");
  // (The unreplicated root directories may cross clusters; the binary must not.)
  std::printf("%llu cross-cluster msgs total\n",
              static_cast<unsigned long long>(
                  campus.network().stats().cross_cluster_messages));
  std::printf("binary contents: %s\n", ToString(*cc).c_str());

  // The administrators prepare version 2 and release it atomically.
  if (campus.PopulateDirect(*sysvol, "/bin/cc", ToBytes("cc v2")) != Status::kOk) return 1;
  auto ro2 = campus.registry().ReleaseReadOnly(*sysvol, "sys.sun.ro-1985-11", {0, 1, 2});
  if (!ro2.ok()) return 1;
  std::printf("released new clone volume %u (old clone %u remains frozen)\n", *ro2, *ro1);

  // The workstation picks the new release on its next resolution of the
  // mount point (volume hints refresh when the old volume info goes stale;
  // here we flush to force immediate re-resolution).
  ws.venus().FlushCache();
  auto cc2 = ws.ReadWholeFile("/bin/cc");
  std::printf("after release: %s\n", ToString(*cc2).c_str());

  // Old versions coexist: the frozen clone still serves v1. Walk the old
  // clone's directories to its copy of /bin/cc.
  auto* old_clone = campus.registry().FindVolume(*ro1);
  auto root_entries = vice::DeserializeDirectory(*old_clone->FetchData(old_clone->root()));
  auto bin_entries = vice::DeserializeDirectory(
      *old_clone->FetchData(root_entries->at("bin").fid));
  auto old_data = old_clone->FetchData(bin_entries->at("cc").fid);
  std::printf("frozen clone still serves: %s\n", ToString(*old_data).c_str());
  return 0;
}
