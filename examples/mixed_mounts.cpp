// Mixed mounts: three file-system backends behind one Unix interface.
//
// The VFS switch makes the paper's transparency claim literal — "other than
// performance, there is no difference between accessing a local file and a
// file in the shared name space." This example runs the same open/read/
// write/close code against three mounts on one workstation: the local unixfs
// at "/", the whole-file-caching Vice space at /vice, and a Locus-style
// remote-open server attached at /nfs. Only the path — and therefore the
// mount — changes.

#include <cstdio>

#include "src/baseline/remote_open.h"
#include "src/campus/campus.h"
#include "src/virtue/workstation.h"

using namespace itc;

namespace {

// One round-trip through whichever backend owns `path`.
bool Exercise(virtue::Workstation& ws, const std::string& path, const char* label) {
  const SimTime t0 = ws.clock().now();
  if (ws.WriteWholeFile(path, ToBytes("payload via " + std::string(label))) !=
      Status::kOk) {
    std::printf("  %-12s write failed\n", label);
    return false;
  }
  auto back = ws.ReadWholeFile(path);
  if (!back.ok()) {
    std::printf("  %-12s read failed\n", label);
    return false;
  }
  auto info = ws.Stat(path);
  if (!info.ok()) return false;
  std::printf("  %-12s %-18s shared=%d  %6.4fs of virtual time\n", label, path.c_str(),
              info->shared ? 1 : 0, ToSeconds(ws.clock().now() - t0));
  return true;
}

}  // namespace

int main() {
  campus::Campus campus(campus::CampusConfig::Revised(1, 2));
  if (!campus.SetupRootVolume().ok()) return 1;
  auto user = campus.AddUserWithHome("mallory", "pw", 0);
  if (!user.ok()) return 1;

  auto& ws = campus.workstation(0);
  if (ws.LoginWithPassword(user->user, "pw") != Status::kOk) return 1;

  // A remote-open file service on another node of the same simulated
  // network — the paper's Section 5 comparator, now just a mount.
  const auto key = crypto::DeriveKeyFromPassword("pw", "itc.cmu.edu");
  baseline::RemoteOpenServer nfs(campus.workstation(1).node(), &campus.network(),
                                 campus.config().cost, rpc::RpcConfig{},
                                 [&key](UserId) -> std::optional<crypto::Key> { return key; },
                                 99);
  if (ws.MountRemote("/nfs", &nfs, &campus.network(), user->user, key, 3) != Status::kOk) {
    return 1;
  }

  std::printf("mount table:\n");
  for (const auto& [prefix, mount] : ws.vfs().table().entries()) {
    std::printf("  %-10s -> %s%s\n", prefix.c_str(), std::string(mount->name()).c_str(),
                mount->shared() ? " (shared)" : "");
  }

  std::printf("\nsame code, three backends:\n");
  if (!Exercise(ws, "/tmp/notes", "local")) return 1;
  if (!Exercise(ws, "/vice/usr/mallory/notes", "itcfs")) return 1;
  if (!Exercise(ws, "/nfs/notes", "remote-open")) return 1;

  // Warm re-read: only the caching mount gets cheaper the second time.
  std::printf("\nsecond pass (Venus now holds a cached copy):\n");
  if (!Exercise(ws, "/vice/usr/mallory/notes", "itcfs")) return 1;
  if (!Exercise(ws, "/nfs/notes", "remote-open")) return 1;

  // And the boundary is real: a rename cannot silently cross backends.
  if (ws.Rename("/tmp/notes", "/nfs/notes2") == Status::kCrossVolume) {
    std::printf("\nrename /tmp -> /nfs refused: %s (the EXDEV of this system)\n",
                std::string(StatusName(Status::kCrossVolume)).c_str());
  }
  return 0;
}
