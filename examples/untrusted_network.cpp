// Security on an untrusted network (Section 3.4).
//
// "Security should not be predicated on the integrity of workstations."
// This example shows the three mechanisms working together: mutual
// authentication (an impostor without the user's key cannot connect in
// either direction), end-to-end encryption with integrity (a wiretapper
// who flips ciphertext bits is detected), and the trust boundary (no
// cleartext file content appears on the wire).

#include <cstdio>
#include <string>

#include "src/campus/campus.h"
#include "src/crypto/cbc.h"
#include "src/crypto/handshake.h"

using namespace itc;

int main() {
  campus::Campus campus(campus::CampusConfig::Revised(1, 2));
  if (!campus.SetupRootVolume().ok()) return 1;
  auto alice = campus.AddUserWithHome("alice", "rosebud", 0);
  if (!alice.ok()) return 1;

  // 1. A stolen user id without the password gets nowhere: the handshake
  //    fails because the attacker cannot decrypt the server's challenge.
  auto& stolen_ws = campus.workstation(1);
  Status attack = stolen_ws.LoginWithPassword(alice->user, "password-guess");
  std::printf("login with guessed password: %s\n", StatusName(attack).data());

  // 2. The real user connects; all traffic is sealed under a per-session key.
  auto& ws = campus.workstation(0);
  if (ws.LoginWithPassword(alice->user, "rosebud") != Status::kOk) return 1;
  if (ws.WriteWholeFile("/vice/usr/alice/secret.txt",
                        ToBytes("the combination is 12-34-56")) != Status::kOk) {
    return 1;
  }
  std::printf("stored secret over the encrypted connection\n");

  // 3. Wiretap simulation: seal a message as the session layer would, then
  //    flip one ciphertext bit. The integrity check rejects it, so a
  //    man-in-the-middle cannot splice traffic.
  const auto key = crypto::DeriveKeyFromPassword("rosebud", "itc.cmu.edu");
  const auto session = crypto::DeriveSubKey(key, /*nonce=*/42);
  Bytes wire = crypto::Seal(session, ToBytes("Store /usr/alice/grades A+"), 7);

  const std::string as_text(wire.begin(), wire.end());
  std::printf("plaintext visible on the wire: %s\n",
              as_text.find("grades") == std::string::npos ? "no" : "YES (bug!)");

  Bytes tampered = wire;
  tampered[tampered.size() / 2] ^= 0x01;
  auto opened = crypto::Open(session, tampered);
  std::printf("tampered message accepted: %s\n",
              opened.ok() ? "YES (bug!)" : StatusName(opened.status()).data());

  auto genuine = crypto::Open(session, wire);
  std::printf("genuine message decrypts: %s\n", genuine.ok() ? "yes" : "NO (bug!)");

  // 4. Mutual means mutual: a fake server that does not know the user's key
  //    fails the client's check, so Virtue never talks to an impostor Vice.
  crypto::ClientHandshake client(alice->user, key, /*nonce_seed=*/1);
  crypto::ServerHandshake impostor(
      [](UserId) { return std::optional<crypto::Key>(crypto::Key{}); },  // wrong key
      /*nonce_seed=*/2);
  Bytes m1 = client.Start();
  auto m2 = impostor.HandleHello(m1);
  Status verdict = Status::kAuthFailed;
  if (m2.ok()) {
    auto m3 = client.HandleChallenge(*m2);
    verdict = m3.ok() ? Status::kOk : m3.status();
  }
  std::printf("client's verdict on impostor server: %s\n", StatusName(verdict).data());
  return 0;
}
