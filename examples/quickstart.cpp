// Quickstart: build a small campus, create a user, and use the shared file
// system from a workstation exactly like a local Unix file system.
//
// Demonstrates the core loop of the ITC design: login (mutual
// authentication), whole-file open/close through the Venus cache, and
// transparent sharing between two workstations.

#include <cstdio>

#include "src/campus/campus.h"

using namespace itc;

int main() {
  // One cluster, one Vice server, four Virtue workstations.
  campus::Campus campus(campus::CampusConfig::Revised(/*clusters=*/1,
                                                      /*workstations_per_cluster=*/4));
  std::printf("campus: %s\n", campus.topology().Describe().c_str());

  // Administrative setup: the shared name space and a user with a home
  // volume mounted at /usr/alice (quota: 5 MB).
  if (!campus.SetupRootVolume().ok()) return 1;
  auto alice = campus.AddUserWithHome("alice", "rosebud", /*custodian=*/0,
                                      /*quota_bytes=*/5 << 20);
  if (!alice.ok()) return 1;
  std::printf("created user 'alice' (id %u), home volume %u at %s\n", alice->user,
              alice->volume, alice->vice_path.c_str());

  // Alice sits down at workstation 0 and logs in. The password never crosses
  // the network: it derives a key used in a mutual challenge-response
  // handshake, and the session is encrypted end to end.
  auto& ws = campus.workstation(0);
  if (ws.LoginWithPassword(alice->user, "rosebud") != Status::kOk) {
    std::printf("login failed\n");
    return 1;
  }

  // The shared name space appears under /vice; everything else is local.
  if (ws.WriteWholeFile("/vice/usr/alice/hello.txt", ToBytes("hello, vice!\n")) !=
      Status::kOk) {
    return 1;
  }
  if (ws.WriteWholeFile("/tmp/scratch", ToBytes("workstation-local scratch\n")) !=
      Status::kOk) {
    return 1;
  }

  auto listing = ws.ReadDir("/vice/usr/alice");
  std::printf("/vice/usr/alice:");
  for (const auto& name : *listing) std::printf(" %s", name.c_str());
  std::printf("\n");

  // A second open is served from the workstation's whole-file cache: Vice is
  // not contacted at all.
  const auto before = ws.venus().stats();
  auto data = ws.ReadWholeFile("/vice/usr/alice/hello.txt");
  const auto after = ws.venus().stats();
  std::printf("read back %zu bytes; fetches during warm read: %llu (cache hit)\n",
              data->size(),
              static_cast<unsigned long long>(after.fetches - before.fetches));

  // User mobility: Alice moves to workstation 3 and sees the same files.
  auto& other = campus.workstation(3);
  if (other.LoginWithPassword(alice->user, "rosebud") != Status::kOk) return 1;
  auto roaming = other.ReadWholeFile("/vice/usr/alice/hello.txt");
  std::printf("from workstation 3: %s", ToString(*roaming).c_str());

  // ...but not the first workstation's local files.
  const bool local_hidden = !other.ReadWholeFile("/tmp/scratch").ok();
  std::printf("workstation 0's /tmp invisible remotely: %s\n",
              local_hidden ? "yes" : "NO (bug!)");

  std::printf("simulated time elapsed at ws0: %.3f s\n", ToSeconds(ws.clock().now()));
  return 0;
}
