// pts — protection server shell, after the AFS administrator tool of the
// same name. Talks to the protection server over its authenticated RPC
// interface (src/protection/protection_rpc.h), so the administrator-only
// checks are exercised exactly as a remote operator would hit them.
//
//   $ ./build/tools/pts
//   pts> login admin root-pw
//   pts> createuser alice rosebud
//   pts> creategroup faculty
//   pts> adduser alice faculty
//   pts> cps alice

#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/net/network.h"
#include "src/protection/protection_rpc.h"

using namespace itc;
using protection::Principal;

namespace {

void Help() {
  std::printf(
      "commands:\n"
      "  login <name> <password>        authenticate to the protection server\n"
      "  createuser <name> <password>   (administrators only)\n"
      "  creategroup <name>             (administrators only)\n"
      "  adduser <user> <group>         add a user to a group\n"
      "  addgroup <child> <parent>      nest one group in another\n"
      "  remove <user> <group>          remove a user from a group\n"
      "  passwd <user> <new-password>   self-service or administrator\n"
      "  cps <user>                     print the Current Protection Subdomain\n"
      "  whoami                         authenticated identity check\n"
      "  quit\n");
}

}  // namespace

int main() {
  const net::Topology topo(net::TopologyConfig{1, 1, 1});
  const sim::CostModel cost = sim::CostModel::Default1985();
  net::Network network(topo, cost);

  protection::ProtectionService service;
  auto admin = service.CreateUser("admin", "root-pw");
  if (!admin.ok()) return 1;
  (void)service.AddToGroup(Principal::User(*admin), protection::kAdministratorsGroup);

  protection::ProtectionRpcServer server(topo.ServerNode(0, 0), &network, cost,
                                         rpc::RpcConfig{}, &service, 12345);
  sim::Clock clock;
  std::unique_ptr<protection::ProtectionClient> client;
  uint64_t seed = 1;

  std::printf("pts: protection server up; bootstrap administrator is "
              "'admin' / 'root-pw'\ntype 'help' for commands\n");

  std::string line;
  std::printf("pts> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    auto need_client = [&]() -> bool {
      if (client == nullptr) std::printf("login first\n");
      return client != nullptr;
    };
    auto lookup_user = [&](const std::string& name) -> Result<UserId> {
      return service.db().LookupUser(name);
    };
    auto lookup_group = [&](const std::string& name) -> Result<GroupId> {
      return service.db().LookupGroup(name);
    };

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd.empty()) {
    } else if (cmd == "help") {
      Help();
    } else if (cmd == "login") {
      std::string name, pw;
      in >> name >> pw;
      auto uid = lookup_user(name);
      if (!uid.ok()) {
        std::printf("no such user\n");
      } else {
        auto fresh = std::make_unique<protection::ProtectionClient>(
            topo.WorkstationNode(0, 0), &clock, &server, &network, cost);
        const auto key = crypto::DeriveKeyFromPassword(pw, "itc.cmu.edu");
        Status s = fresh->Connect(*uid, key, seed++);
        std::printf("%s\n", StatusName(s).data());
        if (s == Status::kOk) client = std::move(fresh);
      }
    } else if (cmd == "createuser") {
      std::string name, pw;
      in >> name >> pw;
      if (need_client()) {
        auto uid = client->CreateUser(name, pw);
        if (uid.ok()) {
          std::printf("user %s has id %u\n", name.c_str(), *uid);
        } else {
          std::printf("%s\n", StatusName(uid.status()).data());
        }
      }
    } else if (cmd == "creategroup") {
      std::string name;
      in >> name;
      if (need_client()) {
        auto gid = client->CreateGroup(name);
        if (gid.ok()) {
          std::printf("group %s has id %u\n", name.c_str(), *gid);
        } else {
          std::printf("%s\n", StatusName(gid.status()).data());
        }
      }
    } else if (cmd == "adduser" || cmd == "addgroup" || cmd == "remove") {
      std::string member, group;
      in >> member >> group;
      if (need_client()) {
        auto gid = lookup_group(group);
        Result<Principal> who = Status::kNotFound;
        if (cmd == "addgroup") {
          auto child = lookup_group(member);
          if (child.ok()) who = Principal::Group(*child);
        } else {
          auto uid = lookup_user(member);
          if (uid.ok()) who = Principal::User(*uid);
        }
        if (!gid.ok() || !who.ok()) {
          std::printf("unknown principal or group\n");
        } else if (cmd == "remove") {
          std::printf("%s\n", StatusName(client->RemoveFromGroup(*who, *gid)).data());
        } else {
          std::printf("%s\n", StatusName(client->AddToGroup(*who, *gid)).data());
        }
      }
    } else if (cmd == "passwd") {
      std::string name, pw;
      in >> name >> pw;
      if (need_client()) {
        auto uid = lookup_user(name);
        if (!uid.ok()) {
          std::printf("no such user\n");
        } else {
          std::printf("%s\n", StatusName(client->SetPassword(*uid, pw)).data());
        }
      }
    } else if (cmd == "cps") {
      std::string name;
      in >> name;
      auto uid = lookup_user(name);
      if (!uid.ok()) {
        std::printf("no such user\n");
      } else {
        for (const Principal& p : service.db().CPS(*uid)) {
          if (p.kind == Principal::Kind::kUser) {
            auto n = service.db().UserName(p.id);
            std::printf("  user  %u %s\n", p.id, n.ok() ? n->c_str() : "?");
          } else {
            auto n = service.db().GroupName(p.id);
            std::printf("  group %u %s\n", p.id, n.ok() ? n->c_str() : "?");
          }
        }
      }
    } else if (cmd == "whoami") {
      if (need_client()) {
        auto who = client->WhoAmI();
        if (who.ok()) {
          std::printf("user id %u, CPS size %u\n", who->first, who->second);
        } else {
          std::printf("%s\n", StatusName(who.status()).data());
        }
      }
    } else {
      std::printf("unknown command (try 'help')\n");
    }
    std::printf("pts> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
