// Lint v2, pass 1: the repo-wide symbol index.
//
// Built purely from the per-file token streams, the index records every
// function *definition* (free or member, in-class or out-of-class), which
// class each one belongs to, and the token range of its body — enough for
// pass 2 (tools/lint/callgraph.h and the interprocedural rules) to reason
// across files without parsing C++ for real.
//
// The index also collects the ownership annotations from
// src/common/ownership.h, which expand to nothing for the compiler and are
// plain identifiers to the lexer:
//
//   ITC_OWNED_BY_KERNEL   on a member declaration: the member belongs to the
//                         owning kernel's domain; only functions reachable
//                         from an ENTRY or QUIESCENT function of the class
//                         may touch it (rule kernel-ownership).
//   ITC_OWNED_BY_SHARD    on a member declaration: stronger — the member
//                         belongs to ONE shard of the kernel group, and a
//                         touch additionally requires that the method is
//                         not a declared foreign-shard path (the rule
//                         reports shard state with a sharper message and
//                         honors the ITC_SHARD_FOREIGN waiver).
//   ITC_KERNEL_ENTRY      on a function: an entry point of the kernel
//                         domain (the event loop, or a call activities make
//                         while the kernel is running).
//   ITC_KERNEL_QUIESCENT  on a function: sanctioned only while the owning
//                         kernel is idle (setup, accessors, orchestration).
//   ITC_SHARD_FOREIGN     on a function: an acknowledged cross-shard touch;
//                         the function may reach owned-by-shard state
//                         without being ENTRY/QUIESCENT-reachable, and the
//                         annotation is the audit trail of that debt.
//
// The parse is a heuristic scope scanner, not a grammar: braces are matched
// structurally, preprocessor-directive tokens are skipped (so a macro body
// like ITC_CHECK's do { } while (false) cannot desync the scope stack), and
// anything it cannot classify becomes an anonymous scope that is simply
// skipped. Lambda bodies are intentionally NOT separate functions — their
// tokens fall inside the enclosing definition's body range, so a call made
// from a lambda (Spawn callbacks, BindOps handlers) is attributed to the
// function that wrote the lambda, which is exactly what the call graph
// wants.

#ifndef TOOLS_LINT_SYMBOLS_H_
#define TOOLS_LINT_SYMBOLS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace itc::lint {

struct FunctionDef {
  const LexedFile* file = nullptr;
  int line = 0;        // line of the function's name token
  std::string name;    // unqualified: "Run", "operator()", "~Kernel"
  std::string cls;     // owning class, "" for free functions
  size_t body_begin = 0;  // token index of the body's '{'
  size_t body_end = 0;    // one past the matching '}'
  bool entry = false;          // ITC_KERNEL_ENTRY
  bool quiescent = false;      // ITC_KERNEL_QUIESCENT
  bool shard_foreign = false;  // ITC_SHARD_FOREIGN

  bool IsCtorOrDtor() const { return name == cls || name == "~" + cls; }
  std::string Qualified() const { return cls.empty() ? name : cls + "::" + name; }
};

// One ITC_OWNED_BY_KERNEL / ITC_OWNED_BY_SHARD member declaration.
struct OwnedMember {
  const LexedFile* file = nullptr;
  int line = 0;
  std::string cls;
  std::string name;
  bool shard = false;  // ITC_OWNED_BY_SHARD (strictly stronger)
};

struct SymbolIndex {
  std::vector<FunctionDef> functions;
  std::vector<OwnedMember> owned;
  // Unqualified name -> indices into `functions`. Overloads and same-named
  // methods of different classes share a bucket; the call graph resolves a
  // call to every one of them (conservative by design).
  std::map<std::string, std::vector<size_t>> by_name;
};

SymbolIndex BuildIndex(const std::vector<LexedFile>& files);

}  // namespace itc::lint

#endif  // TOOLS_LINT_SYMBOLS_H_
