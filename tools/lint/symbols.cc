#include "tools/lint/symbols.h"

#include <cstddef>

namespace itc::lint {

namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

bool IsControlLike(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",      "for",     "while",    "switch", "catch",  "return",
      "sizeof",  "alignof", "decltype", "do",     "else",   "try",
      "new",     "delete",  "throw",    "assert", "defined"};
  return kw.count(s) > 0;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kOther } kind;
  std::string name;     // class name when kind == kClass
  size_t func = kNone;  // index into SymbolIndex::functions when kFunction
};

// A marker lifted from a *declaration* (`ITC_KERNEL_ENTRY void Run();`);
// applied to every matching definition once all files are indexed, so
// annotating the header is enough.
struct DeclMarker {
  std::string cls;
  std::string name;
  bool entry = false;
  bool quiescent = false;
  bool shard_foreign = false;
};

// What a statement ending in `{` (or, for markers, `;`) turned out to be.
struct StmtInfo {
  bool entry = false;
  bool quiescent = false;
  bool shard_foreign = false;
  bool owned = false;
  bool owned_shard = false;
  size_t paren = kNone;  // stmt position of the first '(' (always depth 0)
  size_t eq = kNone;     // stmt position of the first depth-0 '=' (non-operator=)
};

StmtInfo ScanStmt(const std::vector<Token>& t, const std::vector<size_t>& stmt) {
  StmtInfo info;
  int depth = 0;
  for (size_t j = 0; j < stmt.size(); ++j) {
    const Token& tok = t[stmt[j]];
    if (tok.text == "ITC_KERNEL_ENTRY") info.entry = true;
    if (tok.text == "ITC_KERNEL_QUIESCENT") info.quiescent = true;
    if (tok.text == "ITC_SHARD_FOREIGN") info.shard_foreign = true;
    if (tok.text == "ITC_OWNED_BY_KERNEL") info.owned = true;
    if (tok.text == "ITC_OWNED_BY_SHARD") {
      info.owned = true;
      info.owned_shard = true;
    }
    if (tok.text == "(") {
      if (info.paren == kNone) info.paren = j;
      ++depth;
    } else if (tok.text == ")") {
      --depth;
    } else if (tok.text == "=" && depth == 0 && info.eq == kNone &&
               !(j > 0 && t[stmt[j - 1]].text == "operator")) {
      info.eq = j;
    }
  }
  return info;
}

// The function name ending just before stmt position `paren`, or "" when the
// statement is not a function declaration/definition. Also resolves the
// out-of-class qualifier (`Kernel::Run`, `Event::operator<`) into *cls.
std::string FunctionName(const std::vector<Token>& t, const std::vector<size_t>& stmt,
                         size_t paren, std::string* cls) {
  if (paren == kNone || paren == 0) return "";
  auto text = [&](size_t j) { return t[stmt[j]].text; };
  auto is_ident = [&](size_t j) { return t[stmt[j]].kind == TokKind::kIdent; };

  size_t first = paren - 1;  // stmt position of the name's first token
  std::string name;
  if (is_ident(first) && text(first) == "operator" && paren + 1 < stmt.size() &&
      text(paren + 1) == ")") {
    name = "operator()";
  } else if (is_ident(first)) {
    name = text(first);
    if (IsControlLike(name)) return "";
    if (first > 0 && text(first - 1) == "~") {
      name = "~" + name;
      --first;
    }
  } else if (t[stmt[first]].kind == TokKind::kPunct && first > 0 &&
             text(first - 1) == "operator") {
    // operator== / operator< / operator[] (two punct tokens).
    if (text(first) == "]" && first >= 2 && text(first - 1) == "[" &&
        text(first - 2) == "operator") {
      name = "operator[]";
      first -= 2;
    } else {
      name = "operator" + text(first);
      --first;
    }
  } else {
    return "";  // lambda (`]` before `(`), cast, ...
  }

  // Qualifier: `Cls :: name` or `Cls<...> :: name` right before the name.
  if (first > 0 && text(first - 1) == "::") {
    size_t q = first - 1;
    if (q > 0 && text(q - 1) == ">") {
      int d = 0;
      while (q-- > 0) {
        if (text(q) == ">") ++d;
        else if (text(q) == "<" && --d == 0) break;
      }
    }
    if (q > 0 && is_ident(q - 1)) *cls = text(q - 1);
  }
  return name;
}

// Last depth-0 identifier before the initializer — the declared member name
// in `ITC_OWNED_BY_KERNEL std::vector<Event> heap_;` and friends.
std::string MemberName(const std::vector<Token>& t, const std::vector<size_t>& stmt,
                       size_t stop) {
  std::string name;
  int depth = 0;
  const size_t end = stop == kNone ? stmt.size() : stop;
  for (size_t j = 0; j < end; ++j) {
    const Token& tok = t[stmt[j]];
    if (tok.text == "(" || tok.text == "[") ++depth;
    else if (tok.text == ")" || tok.text == "]") --depth;
    else if (depth == 0 && tok.kind == TokKind::kIdent &&
             tok.text != "ITC_OWNED_BY_KERNEL" && tok.text != "ITC_OWNED_BY_SHARD")
      name = tok.text;
  }
  return name;
}

}  // namespace

SymbolIndex BuildIndex(const std::vector<LexedFile>& files) {
  SymbolIndex idx;
  std::vector<DeclMarker> decl_markers;

  for (const LexedFile& file : files) {
    const std::vector<Token>& t = file.tokens;
    std::vector<Scope> scopes;
    std::vector<size_t> stmt;  // token indices since the last boundary
    int stmt_depth = 0;        // running paren depth of `stmt`

    auto class_scope = [&scopes]() -> std::string {
      for (size_t s = scopes.size(); s-- > 0;) {
        if (scopes[s].kind == Scope::kClass) return scopes[s].name;
        if (scopes[s].kind != Scope::kNamespace) break;
      }
      return "";
    };
    auto in_code_scope = [&scopes]() {
      for (size_t s = scopes.size(); s-- > 0;) {
        if (scopes[s].kind == Scope::kFunction || scopes[s].kind == Scope::kOther)
          return true;
      }
      return false;
    };

    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].pp) continue;  // directives never affect the scope structure
      const Token& tok = t[i];

      if (tok.text == "{" && tok.kind == TokKind::kPunct) {
        Scope sc{Scope::kOther, "", kNone};
        if (!in_code_scope() && stmt_depth == 0) {
          StmtInfo info = ScanStmt(t, stmt);
          bool is_enum = !stmt.empty() && t[stmt[0]].text == "enum";
          size_t class_kw = kNone;
          bool has_ns = false;
          for (size_t j = 0; j < stmt.size(); ++j) {
            const std::string& s = t[stmt[j]].text;
            if (s == "class" || s == "struct" || s == "union") class_kw = j;
            if (s == "namespace") has_ns = true;
          }
          if (is_enum) {
            // enum (class) body: kOther.
          } else if (has_ns && info.paren == kNone) {
            sc = {Scope::kNamespace, "", kNone};
          } else if (class_kw != kNone && info.paren == kNone) {
            std::string cname;
            if (class_kw + 1 < stmt.size() &&
                t[stmt[class_kw + 1]].kind == TokKind::kIdent)
              cname = t[stmt[class_kw + 1]].text;
            sc = {Scope::kClass, cname, kNone};
          } else if (info.eq == kNone || (info.paren != kNone && info.eq > info.paren)) {
            std::string cls = class_scope();
            std::string name = FunctionName(t, stmt, info.paren, &cls);
            if (!name.empty()) {
              FunctionDef def;
              def.file = &file;
              def.line = t[stmt[info.paren - 1]].line;
              def.name = name;
              def.cls = cls;
              def.body_begin = i;
              def.body_end = t.size();
              def.entry = info.entry;
              def.quiescent = info.quiescent;
              def.shard_foreign = info.shard_foreign;
              sc = {Scope::kFunction, "", idx.functions.size()};
              idx.functions.push_back(def);
            } else if (info.owned) {
              // Brace-initialized annotated member: `... int x{0};`.
              std::string cls2 = class_scope();
              std::string mname = MemberName(t, stmt, kNone);
              if (!cls2.empty() && !mname.empty())
                idx.owned.push_back(
                    {&file, t[stmt[0]].line, cls2, mname, info.owned_shard});
            }
          }
        }
        scopes.push_back(sc);
        stmt.clear();
        stmt_depth = 0;
        continue;
      }

      if (tok.text == "}" && tok.kind == TokKind::kPunct) {
        if (!scopes.empty()) {
          if (scopes.back().kind == Scope::kFunction)
            idx.functions[scopes.back().func].body_end = i + 1;
          scopes.pop_back();
        }
        stmt.clear();
        stmt_depth = 0;
        continue;
      }

      if (tok.text == ";" && tok.kind == TokKind::kPunct && stmt_depth == 0) {
        if (!in_code_scope() && !stmt.empty()) {
          StmtInfo info = ScanStmt(t, stmt);
          if (info.owned) {
            std::string cls = class_scope();
            std::string mname = MemberName(t, stmt, info.eq);
            if (!cls.empty() && !mname.empty())
              idx.owned.push_back(
                  {&file, t[stmt[0]].line, cls, mname, info.owned_shard});
          }
          if (info.entry || info.quiescent || info.shard_foreign) {
            std::string cls = class_scope();
            std::string name = FunctionName(t, stmt, info.paren, &cls);
            if (!name.empty())
              decl_markers.push_back(
                  {cls, name, info.entry, info.quiescent, info.shard_foreign});
          }
        }
        stmt.clear();
        continue;
      }

      // Access labels reset the statement so `public:` never glues onto the
      // following member declaration.
      if (tok.text == ":" && stmt.size() == 1 &&
          (t[stmt[0]].text == "public" || t[stmt[0]].text == "private" ||
           t[stmt[0]].text == "protected")) {
        stmt.clear();
        continue;
      }

      if (tok.text == "(") ++stmt_depth;
      if (tok.text == ")" && stmt_depth > 0) --stmt_depth;
      stmt.push_back(i);
    }
  }

  for (size_t i = 0; i < idx.functions.size(); ++i) {
    idx.by_name[idx.functions[i].name].push_back(i);
  }
  for (const DeclMarker& m : decl_markers) {
    auto it = idx.by_name.find(m.name);
    if (it == idx.by_name.end()) continue;
    for (size_t i : it->second) {
      if (idx.functions[i].cls != m.cls) continue;
      if (m.entry) idx.functions[i].entry = true;
      if (m.quiescent) idx.functions[i].quiescent = true;
      if (m.shard_foreign) idx.functions[i].shard_foreign = true;
    }
  }
  return idx;
}

}  // namespace itc::lint
