// itcfs-lint rule engine.
//
// Each rule encodes a project invariant that used to be enforced only by
// code review (or by a runtime crash):
//
//   nodiscard-status        every function declared in a header returning
//                           Status or Result<T> carries [[nodiscard]]
//   discarded-status        no statement-position call to such a function
//                           silently drops the returned error
//   intention-before-mutate every ViceServer handler in file_server.cc
//                           appends to the IntentionLog before its first
//                           volume mutation (store-on-close atomicity, §3.5)
//   opcode-sync             the Proc enums, the OpSchema tables, and the
//                           generated tables in docs/PROTOCOL.md agree
//   sim-determinism         no wall-clock / ambient-randomness identifiers
//                           outside src/sim/ and src/common/rng.h
//   assert-side-effect      no assert() whose condition has side effects
//   assert-in-header        no assert() in a header at all (the default
//                           RelWithDebInfo build defines NDEBUG, so these
//                           are silent no-ops; use ITC_CHECK)
//   resource-serve-outside-kernel
//                           no direct sim::Resource::Serve call outside
//                           src/sim/ — functional code charges demands
//                           through sim::Charge so the event kernel can
//                           admit them in arrival order
//   no-alloc-in-kernel-hot-path
//                           no new/make_unique/make_shared or container
//                           growth call (push_back, insert, resize, ...)
//                           inside Kernel::Run*/Kernel::Dispatch bodies —
//                           the steady-state event loop is allocation-free
//                           per event (suppression allowed for cold paths)
//   vfs-dispatch-only       no direct Venus file operation (venus_->Open,
//                           venus().Stat, ...) and no baseline::
//                           RemoteOpenClient use outside src/virtue/vfs/,
//                           src/venus/, src/baseline/ — file access goes
//                           through the vfs::Switch mount layer
//   no-raw-lease-term       no statement mixing a lease-related identifier
//                           with a numeric time literal (Seconds(30), ...)
//                           outside the two config default sites
//                           (ViceConfig::lease_term in src/vice/
//                           file_server.h, VenusConfig::lease_renew_margin
//                           in src/venus/config.h) — the lease/renewal
//                           clockwork must follow the configured term, or
//                           the correctness argument (recovery embargo =
//                           one term, staleness <= one term) silently
//                           splits from the durations actually in force
//
// Lint v2 adds interprocedural rules that run on the repo-wide symbol index
// (tools/lint/symbols.h) and conservative call graph (tools/lint/callgraph.h)
// built from the same token streams:
//
//   kernel-ownership        state marked ITC_OWNED_BY_KERNEL may only be
//                           touched by methods reachable from a function
//                           marked ITC_KERNEL_ENTRY or ITC_KERNEL_QUIESCENT
//                           (the ownership fence the sharded multi-kernel
//                           runtime relies on; src/common/ownership.h).
//                           State marked ITC_OWNED_BY_SHARD belongs to one
//                           shard of the kernel group and is held to the
//                           same fence with a sharper message; a method
//                           marked ITC_SHARD_FOREIGN is a declared (waived)
//                           cross-shard touch and may reach it
//   no-alloc-in-kernel-hot-path-transitive
//                           the allocation ban, extended over the call
//                           graph: anything reachable from Kernel::Run*/
//                           Dispatch/WaitUntil may not allocate either
//   sim-determinism-transitive
//                           the determinism ban, extended over the call
//                           graph: calling a helper that (transitively)
//                           reaches a banned wall-clock/entropy use is
//                           itself a violation, so bans cannot be laundered
//                           through wrappers
//   stale-suppression       an `itcfs-lint: allow(...)` naming an unknown
//                           rule id, or suppressing zero diagnostics in a
//                           full run, is itself an error
//   rule-doc-sync           every registered rule id has a `### `id``
//                           section in docs/LINT.md and vice versa
//
// Suppression: `// itcfs-lint: allow(rule-id)` on the offending line or the
// line above. See docs/LINT.md for the catalog.

#ifndef TOOLS_LINT_RULES_H_
#define TOOLS_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace itc::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct LintInput {
  std::vector<LexedFile> files;
  // Contents of docs/PROTOCOL.md; empty skips the generated-table half of
  // opcode-sync (the enum/schema half still runs).
  std::string protocol_md;
  // Contents of docs/LINT.md; empty skips rule-doc-sync.
  std::string lint_md;
};

inline const std::set<std::string>& AllRules() {
  static const std::set<std::string> rules = {
      "nodiscard-status",  "discarded-status",  "intention-before-mutate",
      "opcode-sync",       "sim-determinism",   "assert-side-effect",
      "assert-in-header",  "resource-serve-outside-kernel",
      "no-alloc-in-kernel-hot-path", "vfs-dispatch-only",
      "no-raw-lease-term", "kernel-ownership",
      "no-alloc-in-kernel-hot-path-transitive", "sim-determinism-transitive",
      "stale-suppression", "rule-doc-sync",  "no-eager-contents",
  };
  return rules;
}

// Runs the rules over the input. `only` restricts to a subset of rule ids;
// empty means all. Returns diagnostics sorted by (file, line, rule).
std::vector<Diagnostic> RunRules(const LintInput& input,
                                 const std::set<std::string>& only = {});

}  // namespace itc::lint

#endif  // TOOLS_LINT_RULES_H_
