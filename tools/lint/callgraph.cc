#include "tools/lint/callgraph.h"

#include <cctype>
#include <deque>
#include <string>

namespace itc::lint {

namespace {

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",    "switch",   "catch",   "return",
      "sizeof", "alignof",  "decltype", "noexcept", "static_assert",
      "assert", "defined",  "alignas",  "typeid",   "throw"};
  return kw.count(s) > 0;
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Receiver name, normalized for matching against a class name: lowercase,
// member-underscore and plural 's' stripped (`servers_` -> "server").
std::string NormHint(std::string s) {
  s = Lower(std::move(s));
  if (!s.empty() && s.back() == '_') s.pop_back();
  if (s.size() > 3 && s.back() == 's') s.pop_back();
  return s;
}

// Heuristic receiver typing: `fiber.Start(` resolves to Fiber::Start, not to
// every Start in the repo, because the receiver and the class share a name
// stem. Hints shorter than 3 chars (`p->Step()`) are uninformative and keep
// every candidate — over-approximation stays the default; this only prunes
// when the receiver clearly names its type.
bool ClassMatchesHint(const std::string& cls, const std::string& norm_hint) {
  if (cls.empty() || norm_hint.size() < 3) return false;
  const std::string c = Lower(cls);
  return c.find(norm_hint) != std::string::npos ||
         norm_hint.find(c) != std::string::npos;
}

// The identifier the receiver chain ends in, for a call at token i whose
// t[i-1] is `.`/`->`: `fiber.Start` -> "fiber", `venus().Open` -> "venus",
// `servers_[i]->Restart` -> "servers_". "" when the chain is opaque.
std::string ReceiverHint(const std::vector<Token>& t, size_t i) {
  if (i < 2) return "";
  size_t r = i - 2;
  if (t[r].kind == TokKind::kIdent) return t[r].text;
  if (t[r].text == ")" || t[r].text == "]") {
    const std::string open = t[r].text == ")" ? "(" : "[";
    const std::string close = t[r].text;
    int depth = 0;
    for (size_t j = r + 1; j-- > 0;) {
      if (t[j].text == close) ++depth;
      else if (t[j].text == open && --depth == 0) {
        if (j > 0 && t[j - 1].kind == TokKind::kIdent) return t[j - 1].text;
        return "";
      }
    }
  }
  return "";
}

}  // namespace

CallGraph BuildCallGraph(const SymbolIndex& idx) {
  CallGraph g;
  g.callees.resize(idx.functions.size());

  for (size_t fi = 0; fi < idx.functions.size(); ++fi) {
    const FunctionDef& f = idx.functions[fi];
    const std::vector<Token>& t = f.file->tokens;
    auto add_edge = [&](size_t callee, int line) {
      if (callee == fi) return;  // self-recursion adds nothing to reachability
      if (g.callees[fi].insert(callee).second) {
        g.sites.push_back({fi, callee, line});
      }
    };

    for (size_t i = f.body_begin; i < f.body_end && i < t.size(); ++i) {
      if (t[i].pp) continue;
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& name = t[i].text;

      // &Cls::Foo — member-function pointer handed to a backend/thread.
      if (i + 2 < f.body_end && t[i + 1].text == "::" &&
          t[i + 2].kind == TokKind::kIdent && i > 0 && t[i - 1].text == "&" &&
          !(i + 3 < t.size() && t[i + 3].text == "(")) {
        auto it = idx.by_name.find(t[i + 2].text);
        if (it != idx.by_name.end()) {
          for (size_t ci : it->second) {
            if (idx.functions[ci].cls == name) add_edge(ci, t[i].line);
          }
        }
        continue;
      }

      if (i + 1 >= t.size() || t[i + 1].text != "(" || IsKeyword(name)) continue;
      auto it = idx.by_name.find(name);
      if (it == idx.by_name.end()) continue;
      const std::string prev = i > 0 ? t[i - 1].text : "";

      if (prev == "." || prev == "->") {
        // Member call: candidates must be methods; prune by receiver name
        // when it is informative, else keep every class's method.
        const std::string hint = ReceiverHint(t, i);
        const std::string norm = NormHint(hint);
        const bool informative = hint == "this" || norm.size() >= 3;
        std::vector<size_t> kept;
        for (size_t ci : it->second) {
          const FunctionDef& cand = idx.functions[ci];
          if (cand.cls.empty()) continue;
          if (hint == "this") {
            if (cand.cls == f.cls) kept.push_back(ci);
          } else if (!informative || ClassMatchesHint(cand.cls, norm)) {
            kept.push_back(ci);
          }
        }
        // An informative receiver matching no class means a std:: or
        // otherwise un-indexed type; with a match, trust the pruning. An
        // uninformative one (`p->Step()`) already kept everything.
        for (size_t ci : kept) add_edge(ci, t[i].line);
        continue;
      }

      if (prev == "::") {
        // Cls::Foo( targets that class; ns::Foo( targets free functions.
        const std::string qual =
            i >= 2 && t[i - 2].kind == TokKind::kIdent ? t[i - 2].text : "";
        bool class_qualified = false;
        for (size_t ci : it->second) {
          if (!qual.empty() && idx.functions[ci].cls == qual) class_qualified = true;
        }
        for (size_t ci : it->second) {
          const FunctionDef& cand = idx.functions[ci];
          if (class_qualified ? cand.cls == qual : cand.cls.empty())
            add_edge(ci, t[i].line);
        }
        continue;
      }

      // Bare call: own-class method, free function, or constructor.
      for (size_t ci : it->second) {
        const FunctionDef& cand = idx.functions[ci];
        if (cand.cls.empty() || cand.cls == f.cls || cand.cls == name)
          add_edge(ci, t[i].line);
      }
    }
  }
  return g;
}

std::vector<bool> Reachable(const CallGraph& g, const std::vector<size_t>& roots) {
  std::vector<bool> seen(g.callees.size(), false);
  std::deque<size_t> work;
  for (size_t r : roots) {
    if (r < seen.size() && !seen[r]) {
      seen[r] = true;
      work.push_back(r);
    }
  }
  while (!work.empty()) {
    size_t cur = work.front();
    work.pop_front();
    for (size_t next : g.callees[cur]) {
      if (!seen[next]) {
        seen[next] = true;
        work.push_back(next);
      }
    }
  }
  return seen;
}

}  // namespace itc::lint
