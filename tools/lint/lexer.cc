#include "tools/lint/lexer.h"

#include <cctype>

namespace itc::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character operators, longest first within each length class.
constexpr std::string_view kThreeCharOps[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kTwoCharOps[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                            ">=", "==", "!=", "&&", "||", "+=", "-=",
                                            "*=", "/=", "%=", "&=", "|=", "^=", "##"};

// String-literal encoding prefixes. An identifier that spells one of these
// and is immediately followed by `"` is a literal, not an identifier.
bool IsStringPrefix(std::string_view s) {
  return s == "u8" || s == "u" || s == "U" || s == "L";
}
bool IsRawStringPrefix(std::string_view s) {
  return s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR";
}

// Raw-string delimiters are at most 16 chars and may not contain space,
// parens, backslash, quote, or newline ([lex.string]). Anything else means
// the `X"` we saw was not actually a raw-string opener.
bool IsRawDelimChar(char c) {
  return c != ' ' && c != '(' && c != ')' && c != '\\' && c != '"' && c != '\n' &&
         c != '\r' && c != '\t';
}

// Parses "itcfs-lint: allow(a, b)" out of a comment body; returns the rule
// ids, empty if the comment is not a suppression.
std::set<std::string> ParseAllow(std::string_view comment) {
  std::set<std::string> rules;
  const std::string_view tag = "itcfs-lint:";
  size_t at = comment.find(tag);
  if (at == std::string_view::npos) return rules;
  size_t p = comment.find("allow(", at + tag.size());
  if (p == std::string_view::npos) return rules;
  p += 6;
  size_t end = comment.find(')', p);
  if (end == std::string_view::npos) return rules;
  std::string cur;
  for (size_t i = p; i <= end; ++i) {
    char c = i < end ? comment[i] : ',';
    if (c == ',' || c == ')') {
      if (!cur.empty()) rules.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  return rules;
}

}  // namespace

bool LexedFile::IsHeader() const {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

std::vector<size_t> LexedFile::AllowIndices(int line, const std::string& rule) const {
  std::vector<size_t> out;
  auto it = allow.find(line);
  if (it == allow.end()) return out;
  for (size_t idx : it->second) {
    const std::set<std::string>& rules = suppressions[idx].rules;
    if (rules.count(rule) > 0 || rules.count("all") > 0) out.push_back(idx);
  }
  return out;
}

bool LexedFile::Allowed(int line, const std::string& rule) const {
  return !AllowIndices(line, rule).empty();
}

LexedFile Lex(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace so far on this physical line
  bool pp = false;            // inside a preprocessor directive

  auto note_allow = [&out](std::string_view comment, int comment_line) {
    std::set<std::string> rules = ParseAllow(comment);
    if (rules.empty()) return;
    const size_t idx = out.suppressions.size();
    out.suppressions.push_back({comment_line, std::move(rules)});
    out.allow[comment_line].push_back(idx);
    out.allow[comment_line + 1].push_back(idx);
  };

  // True when src[p] starts a backslash line continuation; sets `len` to the
  // splice's byte length (2 for "\\\n", 3 for "\\\r\n").
  auto is_splice = [&src](size_t p, size_t* len) {
    if (p >= src.size() || src[p] != '\\') return false;
    if (p + 1 < src.size() && src[p + 1] == '\n') {
      *len = 2;
      return true;
    }
    if (p + 2 < src.size() && src[p + 1] == '\r' && src[p + 2] == '\n') {
      *len = 3;
      return true;
    }
    return false;
  };

  auto push = [&out, &pp](TokKind kind, std::string text, int tok_line) {
    out.tokens.push_back({kind, std::move(text), tok_line, pp});
  };

  // Lexes the "..." or '...' literal starting at quote index q (src[q] is
  // the quote); returns the index just past the literal and appends the
  // token. `tok_line` is the line the literal (or its prefix) started on.
  auto lex_quoted = [&](size_t q, int tok_line) -> size_t {
    const char quote = src[q];
    size_t p = q + 1;
    std::string text;
    while (p < src.size() && src[p] != quote && src[p] != '\n') {
      if (src[p] == '\\' && p + 1 < src.size()) {
        text += src[p];
        text += src[p + 1];
        p += 2;
      } else {
        text += src[p++];
      }
    }
    push(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(text), tok_line);
    // An unterminated literal (newline or EOF first) leaves p on the
    // terminator so line counting stays right.
    return p < src.size() && src[p] == quote ? p + 1 : p;
  };

  // Lexes the raw string literal whose `"` is at index q (the R prefix is
  // already consumed). Returns the index just past it, or q when the
  // delimiter is malformed (not actually a raw string).
  auto lex_raw = [&](size_t q, int tok_line) -> size_t {
    size_t p = q + 1;
    std::string delim;
    while (p < src.size() && src[p] != '(' && delim.size() <= 16 &&
           IsRawDelimChar(src[p])) {
      delim += src[p++];
    }
    if (p >= src.size() || src[p] != '(' || delim.size() > 16) return q;
    const std::string closer = ")" + delim + "\"";
    size_t end = src.find(closer, p);
    if (end == std::string_view::npos) end = src.size();
    const std::string_view body = src.substr(q + 1, end - (q + 1));
    push(TokKind::kString, std::string(body), tok_line);
    for (char b : body) {
      if (b == '\n') ++line;
    }
    return end + closer.size() > src.size() ? src.size() : end + closer.size();
  };

  while (i < src.size()) {
    const char c = src[i];
    size_t splice_len = 0;
    if (is_splice(i, &splice_len)) {
      // Backslash line continuation: whitespace to every token-level rule
      // (a directive continues across it), but the physical line advances.
      ++line;
      i += splice_len;
      continue;
    }
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      pp = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      pp = true;  // directive runs to the next unspliced newline
      push(TokKind::kPunct, "#", line);
      ++i;
      continue;
    }
    at_line_start = false;
    // Line comment; a trailing backslash splices the next line into it.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t end = i;
      int end_line = line;
      for (;;) {
        end = src.find('\n', end);
        if (end == std::string_view::npos) {
          end = src.size();
          break;
        }
        // Count the continuation backslash exactly like a compiler: the
        // comment continues when the newline is spliced away.
        size_t back = end;
        if (back > i && src[back - 1] == '\r') --back;
        if (back > i && src[back - 1] == '\\') {
          ++end_line;
          ++end;
          continue;
        }
        break;
      }
      note_allow(src.substr(i, end - i), end_line);
      line = end_line;
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = src.size();
      const std::string_view body = src.substr(i, end - i);
      // The suppression binds to the line the comment *ends* on.
      int end_line = line;
      for (char b : body) {
        if (b == '\n') ++end_line;
      }
      note_allow(body, end_line);
      line = end_line;
      i = end + 2 > src.size() ? src.size() : end + 2;
      continue;
    }
    // String / char literal (no prefix).
    if (c == '"' || c == '\'') {
      i = lex_quoted(i, line);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t p = i;
      while (p < src.size() && IsIdentChar(src[p])) ++p;
      const std::string_view ident = src.substr(i, p - i);
      if (p < src.size() && src[p] == '"') {
        if (IsRawStringPrefix(ident)) {
          const size_t after = lex_raw(p, line);
          if (after != p) {
            i = after;
            continue;
          }
          // Malformed delimiter: fall through, treat as ident + string.
        }
        if (IsStringPrefix(ident)) {
          i = lex_quoted(p, line);
          continue;
        }
      }
      if (p + 1 < src.size() && src[p] == '\'' && IsStringPrefix(ident)) {
        i = lex_quoted(p, line);  // L'x', u'x', ...
        continue;
      }
      push(TokKind::kIdent, std::string(ident), line);
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Good enough for any C++ numeric literal: digits, letters (hex,
      // suffixes, exponents), dots, quotes (digit separators), and a sign
      // directly after an exponent marker (1.5e+3).
      size_t p = i;
      while (p < src.size()) {
        if (IsIdentChar(src[p]) || src[p] == '.' || src[p] == '\'') {
          ++p;
          continue;
        }
        if ((src[p] == '+' || src[p] == '-') && p > i &&
            (src[p - 1] == 'e' || src[p - 1] == 'E' || src[p - 1] == 'p' ||
             src[p - 1] == 'P')) {
          ++p;
          continue;
        }
        break;
      }
      push(TokKind::kNumber, std::string(src.substr(i, p - i)), line);
      i = p;
      continue;
    }
    // Operators, longest match first.
    bool matched = false;
    if (i + 3 <= src.size()) {
      for (std::string_view op : kThreeCharOps) {
        if (src.substr(i, 3) == op) {
          push(TokKind::kPunct, std::string(op), line);
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 2 <= src.size()) {
      for (std::string_view op : kTwoCharOps) {
        if (src.substr(i, 2) == op) {
          push(TokKind::kPunct, std::string(op), line);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      push(TokKind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  return out;
}

}  // namespace itc::lint
