#include "tools/lint/lexer.h"

#include <cctype>

namespace itc::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character operators, longest first within each length class.
constexpr std::string_view kThreeCharOps[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kTwoCharOps[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                            ">=", "==", "!=", "&&", "||", "+=", "-=",
                                            "*=", "/=", "%=", "&=", "|=", "^=", "##"};

// Parses "itcfs-lint: allow(a, b)" out of a comment body; returns the rule
// ids, empty if the comment is not a suppression.
std::set<std::string> ParseAllow(std::string_view comment) {
  std::set<std::string> rules;
  const std::string_view tag = "itcfs-lint:";
  size_t at = comment.find(tag);
  if (at == std::string_view::npos) return rules;
  size_t p = comment.find("allow(", at + tag.size());
  if (p == std::string_view::npos) return rules;
  p += 6;
  size_t end = comment.find(')', p);
  if (end == std::string_view::npos) return rules;
  std::string cur;
  for (size_t i = p; i <= end; ++i) {
    char c = i < end ? comment[i] : ',';
    if (c == ',' || c == ')') {
      if (!cur.empty()) rules.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  return rules;
}

}  // namespace

bool LexedFile::IsHeader() const {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

bool LexedFile::Allowed(int line, const std::string& rule) const {
  auto it = allow.find(line);
  return it != allow.end() && (it->second.count(rule) > 0 || it->second.count("all") > 0);
}

LexedFile Lex(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);
  size_t i = 0;
  int line = 1;

  auto note_allow = [&out](std::string_view comment, int comment_line) {
    std::set<std::string> rules = ParseAllow(comment);
    if (rules.empty()) return;
    out.allow[comment_line].insert(rules.begin(), rules.end());
    out.allow[comment_line + 1].insert(rules.begin(), rules.end());
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = src.size();
      note_allow(src.substr(i, end - i), line);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = src.size();
      const std::string_view body = src.substr(i, end - i);
      // The suppression binds to the line the comment *ends* on.
      int end_line = line;
      for (char b : body) {
        if (b == '\n') ++end_line;
      }
      note_allow(body, end_line);
      line = end_line;
      i = end + 2 > src.size() ? src.size() : end + 2;
      continue;
    }
    // Raw string literal: R"delim(...)delim".
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < src.size() && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, p);
      if (end == std::string_view::npos) end = src.size();
      const std::string_view body = src.substr(i, end - i);
      out.tokens.push_back({TokKind::kString, std::string(body), line});
      for (char b : body) {
        if (b == '\n') ++line;
      }
      i = end + closer.size() > src.size() ? src.size() : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      size_t p = i + 1;
      std::string text;
      while (p < src.size() && src[p] != c) {
        if (src[p] == '\\' && p + 1 < src.size()) {
          text += src[p];
          text += src[p + 1];
          p += 2;
        } else {
          if (src[p] == '\n') ++line;  // unterminated; keep line counts right
          text += src[p++];
        }
      }
      out.tokens.push_back({c == '"' ? TokKind::kString : TokKind::kChar, text, line});
      i = p + 1 > src.size() ? src.size() : p + 1;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t p = i;
      while (p < src.size() && IsIdentChar(src[p])) ++p;
      out.tokens.push_back({TokKind::kIdent, std::string(src.substr(i, p - i)), line});
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Good enough for any C++ numeric literal: digits, letters (hex,
      // suffixes, exponents), dots, and quotes (digit separators).
      size_t p = i;
      while (p < src.size() && (IsIdentChar(src[p]) || src[p] == '.' || src[p] == '\'')) ++p;
      out.tokens.push_back({TokKind::kNumber, std::string(src.substr(i, p - i)), line});
      i = p;
      continue;
    }
    // Operators, longest match first.
    bool matched = false;
    if (i + 3 <= src.size()) {
      for (std::string_view op : kThreeCharOps) {
        if (src.substr(i, 3) == op) {
          out.tokens.push_back({TokKind::kPunct, std::string(op), line});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 2 <= src.size()) {
      for (std::string_view op : kTwoCharOps) {
        if (src.substr(i, 2) == op) {
          out.tokens.push_back({TokKind::kPunct, std::string(op), line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace itc::lint
