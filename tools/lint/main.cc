// itcfs-lint: project-invariant static analyzer for the ITC DFS repo.
//
// Usage: itcfs_lint [--rule=<id>]... [--list-rules] <repo-root>
//
// Scans <repo-root>/{src,bench,examples}/**/*.{h,cc,cpp} plus
// docs/PROTOCOL.md and docs/LINT.md, and exits nonzero if any rule fires.
// Run as a tier-1 ctest; see docs/LINT.md.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace fs = std::filesystem;

namespace {

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RelPath(const fs::path& root, const fs::path& p) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> only;
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rule=", 0) == 0) {
      const std::string rule = arg.substr(7);
      if (itc::lint::AllRules().count(rule) == 0) {
        std::fprintf(stderr, "itcfs-lint: unknown rule '%s'\n", rule.c_str());
        return 2;
      }
      only.insert(rule);
    } else if (arg == "--list-rules") {
      for (const std::string& r : itc::lint::AllRules()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "itcfs-lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      std::fprintf(stderr, "itcfs-lint: multiple roots given\n");
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::fprintf(stderr, "usage: itcfs_lint [--rule=<id>]... <repo-root>\n");
    return 2;
  }

  const fs::path root(root_arg);
  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    std::fprintf(stderr, "itcfs-lint: %s is not a directory\n",
                 (root / "src").string().c_str());
    return 2;
  }

  std::vector<fs::path> paths;
  for (const char* dir : {"src", "bench", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  itc::lint::LintInput input;
  input.files.reserve(paths.size());
  for (const fs::path& p : paths) {
    input.files.push_back(itc::lint::Lex(RelPath(root, p), ReadFile(p)));
  }
  const fs::path md = root / "docs" / "PROTOCOL.md";
  if (fs::is_regular_file(md, ec)) input.protocol_md = ReadFile(md);
  const fs::path lint_md = root / "docs" / "LINT.md";
  if (fs::is_regular_file(lint_md, ec)) input.lint_md = ReadFile(lint_md);

  const std::vector<itc::lint::Diagnostic> diags = itc::lint::RunRules(input, only);
  for (const itc::lint::Diagnostic& d : diags) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!diags.empty()) {
    std::printf("itcfs-lint: %zu violation%s in %zu file%s scanned\n", diags.size(),
                diags.size() == 1 ? "" : "s", input.files.size(),
                input.files.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
