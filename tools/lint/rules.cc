#include "tools/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "tools/lint/callgraph.h"
#include "tools/lint/symbols.h"

namespace itc::lint {

namespace {

using Toks = std::vector<Token>;

bool Is(const Toks& t, size_t i, std::string_view text) {
  return i < t.size() && t[i].text == text;
}
bool IsIdent(const Toks& t, size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}

// Index just past the `)`/`}`/`]`/`>` matching the opener at `i`. Angle
// scans treat `>>` as two closers (nested template args). Returns t.size()
// on unbalanced input.
size_t SkipBalanced(const Toks& t, size_t i, std::string_view open, std::string_view close) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == open) {
      ++depth;
    } else if (t[i].text == close) {
      if (--depth == 0) return i + 1;
    } else if (open == "<" && t[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
  }
  return t.size();
}

// Index of the opener matching the closer at `i`, or npos.
size_t MatchBack(const Toks& t, size_t i, std::string_view open, std::string_view close) {
  int depth = 0;
  for (size_t j = i + 1; j-- > 0;) {
    if (t[j].text == close) {
      ++depth;
    } else if (t[j].text == open) {
      if (--depth == 0) return j;
    }
  }
  return static_cast<size_t>(-1);
}

const std::set<std::string>& DeclQualifiers() {
  static const std::set<std::string> q = {"virtual",   "static", "inline",
                                          "constexpr", "explicit", "friend"};
  return q;
}

// Tokens that can legitimately precede the start of a member/free function
// declaration (after attributes and qualifiers have been skipped).
bool AtDeclPosition(const Toks& t, size_t i) {
  if (i == 0) return true;
  const std::string& p = t[i - 1].text;
  return p == ";" || p == "{" || p == "}" || p == ":" || p == ">";
}

struct Decl {
  std::string base_type;  // last identifier of the return type's base
  std::string name;
  int line = 0;        // line of the return type token
  bool nodiscard = false;
};

// Walks back from the return type over qualifiers and attribute blocks.
// Sets `nodiscard` if any [[...]] block mentions it; returns the index of
// the first token of the declaration (for the decl-position test).
size_t ScanDeclPrefix(const Toks& t, size_t i, bool* nodiscard) {
  *nodiscard = false;
  while (i > 0) {
    const Token& p = t[i - 1];
    if (p.kind == TokKind::kIdent && DeclQualifiers().count(p.text) > 0) {
      --i;
      continue;
    }
    if (p.text == "]" && i >= 2 && t[i - 2].text == "]") {
      // [[ ... ]] attribute block; MatchBack counts both closers, so it
      // lands on the outermost `[`.
      size_t open = MatchBack(t, i - 1, "[", "]");
      if (open == static_cast<size_t>(-1) || !Is(t, open + 1, "[")) break;
      for (size_t k = open; k < i; ++k) {
        if (t[k].text == "nodiscard") *nodiscard = true;
      }
      i = open;
      continue;
    }
    break;
  }
  return i;
}

// Tries to parse a function declaration whose return type starts at `i`:
//   qualifiers? attr? TypeName(::TypeName)*(<...>)?[*&]* Name (
// Returns the declaration, or nullopt. Only the pieces the rules need.
std::optional<Decl> ParseDecl(const Toks& t, size_t i) {
  if (!IsIdent(t, i)) return std::nullopt;
  // A qualifier is never the type itself; the scan starting at the type
  // token handles `virtual Status Sync(...)` (avoids double-counting).
  if (DeclQualifiers().count(t[i].text) > 0) return std::nullopt;
  // Keywords that start a statement, not a return type — `return Flush();`
  // must not register Flush as a void-returning declaration.
  static const std::set<std::string> kNotATypeStart = {
      "return", "else",  "new",   "delete",  "throw",    "goto",
      "case",   "do",    "break", "continue", "co_return", "co_await",
      "co_yield", "using", "typedef", "sizeof"};
  if (kNotATypeStart.count(t[i].text) > 0) return std::nullopt;
  Decl d;
  d.line = t[i].line;
  size_t first = ScanDeclPrefix(t, i, &d.nodiscard);
  if (!AtDeclPosition(t, first)) return std::nullopt;

  size_t k = i;
  std::string last_type;
  const size_t limit = std::min(t.size(), i + 64);
  while (k < limit) {
    if (IsIdent(t, k)) {
      if (!last_type.empty() && Is(t, k + 1, "(")) {
        d.base_type = last_type;
        d.name = t[k].text;
        return d;
      }
      last_type = t[k].text;
      ++k;
    } else if (Is(t, k, "::")) {
      ++k;
    } else if (Is(t, k, "<")) {
      k = SkipBalanced(t, k, "<", ">");
    } else if (Is(t, k, "*") || Is(t, k, "&") || Is(t, k, "&&")) {
      ++k;
    } else {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

// Which Suppression records earned their keep this run, keyed by
// (suppression index, rule id actually silenced). Consulted afterwards by
// stale-suppression: an allow() that silenced nothing is itself an error.
struct SuppressionUsage {
  std::map<const LexedFile*, std::set<std::pair<size_t, std::string>>> used;

  void Mark(const LexedFile& f, size_t idx, const std::string& rule) {
    used[&f].insert({idx, rule});
  }
  // rule == "" asks "used for anything at all?" (the allow(all) case).
  bool UsedFor(const LexedFile& f, size_t idx, const std::string& rule) const {
    auto it = used.find(&f);
    if (it == used.end()) return false;
    if (!rule.empty()) return it->second.count({idx, rule}) > 0;
    auto lo = it->second.lower_bound({idx, ""});
    return lo != it->second.end() && lo->first == idx;
  }
};

SuppressionUsage* g_usage = nullptr;  // live for the duration of RunRules

void Emit(std::vector<Diagnostic>& out, const LexedFile& f, int line,
          const std::string& rule, std::string message) {
  const std::vector<size_t> allows = f.AllowIndices(line, rule);
  if (!allows.empty()) {
    if (g_usage != nullptr) {
      for (size_t idx : allows) g_usage->Mark(f, idx, rule);
    }
    return;
  }
  out.push_back({f.path, line, rule, std::move(message)});
}

// --- nodiscard-status + declaration harvest ---------------------------------------

struct DeclIndex {
  std::set<std::string> status_returning;  // names declared returning Status/Result
  std::set<std::string> other_returning;   // names declared returning anything else
};

bool ReturnsStatus(const Decl& d) {
  return d.base_type == "Status" || d.base_type == "Result";
}

void CheckNodiscardAndHarvest(const LexedFile& f, DeclIndex& index, bool check,
                              std::vector<Diagnostic>& out) {
  const Toks& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    std::optional<Decl> d = ParseDecl(t, i);
    if (!d.has_value()) continue;
    if (ReturnsStatus(*d)) {
      index.status_returning.insert(d->name);
      if (check && !d->nodiscard) {
        Emit(out, f, d->line, "nodiscard-status",
             "'" + d->name + "' returns " + d->base_type +
                 " but is not [[nodiscard]]; a caller can silently drop the error");
      }
    } else {
      index.other_returning.insert(d->name);
    }
  }
}

// --- discarded-status ----------------------------------------------------------------

// Walks back from the called identifier over an `a.b()->c(` style chain.
// Returns the index of the chain's first token.
size_t ChainStart(const Toks& t, size_t i) {
  while (i > 0) {
    const std::string& p = t[i - 1].text;
    if (p == "." || p == "->" || p == "::") {
      if (i >= 2 && IsIdent(t, i - 2)) {
        i -= 2;
        continue;
      }
      if (i >= 2 && (t[i - 2].text == ")" || t[i - 2].text == "]")) {
        const char* open = t[i - 2].text == ")" ? "(" : "[";
        const char* close = t[i - 2].text == ")" ? ")" : "]";
        size_t o = MatchBack(t, i - 2, open, close);
        if (o == static_cast<size_t>(-1)) return i;
        if (o > 0 && IsIdent(t, o - 1)) {
          i = o - 1;
          continue;
        }
        return o;
      }
    }
    return i;
  }
  return i;
}

// True if the token before `start` makes this a statement-position
// expression (whose value is necessarily discarded).
bool AtStatementPosition(const Toks& t, size_t start) {
  if (start == 0) return true;
  const std::string& p = t[start - 1].text;
  // `:` is deliberately absent: it usually marks a ternary branch
  // (`x ? a() : b()`), not a case label, and the rule must not false-fire.
  if (p == ";" || p == "{" || p == "}" || p == "else" || p == "do") return true;
  if (p == ")") {
    // `if (...) Call();` — the paren must close a control-flow condition.
    size_t o = MatchBack(t, start - 1, "(", ")");
    if (o == static_cast<size_t>(-1) || o == 0) return false;
    const std::string& kw = t[o - 1].text;
    return kw == "if" || kw == "for" || kw == "while" || kw == "switch";
  }
  return false;
}

void CheckDiscardedCalls(const LexedFile& f, const DeclIndex& index,
                         std::vector<Diagnostic>& out) {
  const Toks& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i) || !Is(t, i + 1, "(")) continue;
    const std::string& name = t[i].text;
    if (index.status_returning.count(name) == 0) continue;
    // A name that is also declared with a non-Status return somewhere is
    // ambiguous at token level; skip it rather than guess.
    if (index.other_returning.count(name) > 0) continue;
    const size_t start = ChainStart(t, i);
    if (!AtStatementPosition(t, start)) continue;
    const size_t after = SkipBalanced(t, i + 1, "(", ")");
    if (!Is(t, after, ";")) continue;
    Emit(out, f, t[i].line, "discarded-status",
         "result of '" + name +
             "' (returns Status/Result) is discarded; handle it, propagate it, or "
             "cast to (void) with a comment");
  }
}

// --- intention-before-mutate ------------------------------------------------------

const std::set<std::string>& VolumeMutators() {
  // Volume methods that change durable volume state. Advisory locks and
  // callback promises are volatile by design (§3.2) and deliberately absent.
  static const std::set<std::string> m = {
      "StoreData",  "StoreRef",   "SetMode",  "SetOwner",  "SetAcl", "CreateFile",
      "MakeDir",    "MakeSymlink", "RemoveFile", "RemoveDir",  "Rename",
      "MakeMountPoint"};
  return m;
}

void CheckIntentionBeforeMutate(const LexedFile& f, std::vector<Diagnostic>& out) {
  const Toks& t = f.tokens;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    // ViceServer::Name ( ... ) ... { body }
    if (!Is(t, i, "ViceServer") || !Is(t, i + 1, "::") || !IsIdent(t, i + 2) ||
        !Is(t, i + 3, "(")) {
      continue;
    }
    const std::string fname = t[i + 2].text;
    size_t k = SkipBalanced(t, i + 3, "(", ")");
    // Skip cv-qualifiers etc. up to the body; a `;` means just a declaration.
    while (k < t.size() && !Is(t, k, "{") && !Is(t, k, ";")) ++k;
    if (k >= t.size() || Is(t, k, ";")) continue;
    const size_t body_end = SkipBalanced(t, k, "{", "}");

    size_t first_log = body_end;
    size_t first_mutation = body_end;
    for (size_t j = k; j < body_end; ++j) {
      if (!IsIdent(t, j) || !Is(t, j + 1, "(")) continue;
      if (t[j].text == "LogIntention" && j < first_log) first_log = j;
      if (j > 0 && (t[j - 1].text == "->" || t[j - 1].text == ".") &&
          VolumeMutators().count(t[j].text) > 0 && j < first_mutation) {
        first_mutation = j;
      }
    }
    if (first_mutation < body_end && first_mutation < first_log) {
      Emit(out, f, t[first_mutation].line, "intention-before-mutate",
           "ViceServer::" + fname + " calls " + t[first_mutation].text +
               " without first appending to the IntentionLog; a crash here loses "
               "store-on-close atomicity (§3.5)");
    }
    i = body_end - 1;
  }
}

// --- opcode-sync -------------------------------------------------------------------

struct OpService {
  std::string header;     // file declaring the enum
  std::string enum_name;  // Proc / ProtectionProc
  std::string source;     // file defining the OpSchema
  std::string md_marker;  // vice-op-table / protection-op-table
};

const LexedFile* FindFile(const LintInput& in, const std::string& path) {
  for (const LexedFile& f : in.files) {
    if (f.path == path) return &f;
  }
  return nullptr;
}

// kTestAuth = 1, kGetTime = 2, ... -> {name -> {value, line}}
std::map<std::string, std::pair<uint32_t, int>> ParseEnum(const LexedFile& f,
                                                          const std::string& enum_name) {
  std::map<std::string, std::pair<uint32_t, int>> entries;
  const Toks& t = f.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (!Is(t, i, "enum") || !Is(t, i + 1, "class") || !Is(t, i + 2, enum_name)) continue;
    size_t k = i + 3;
    while (k < t.size() && !Is(t, k, "{")) ++k;
    const size_t end = SkipBalanced(t, k, "{", "}");
    uint32_t next = 0;
    for (size_t j = k + 1; j < end; ++j) {
      if (!IsIdent(t, j)) continue;
      uint32_t value = next;
      size_t after = j + 1;
      if (Is(t, after, "=") && after + 1 < t.size() &&
          t[after + 1].kind == TokKind::kNumber) {
        value = static_cast<uint32_t>(std::stoul(t[after + 1].text));
        after += 2;
      }
      entries[t[j].text] = {value, t[j].line};
      next = value + 1;
      // Skip to the comma ending this enumerator.
      j = after;
      while (j < end && !Is(t, j, ",")) ++j;
    }
    break;
  }
  return entries;
}

// `Op(Proc::kFetch), "Fetch"` / `op(P::kWhoAmI), "WhoAmI"` pairs.
std::vector<std::pair<std::string, std::string>> ParseSchemaPairs(const LexedFile& f) {
  std::vector<std::pair<std::string, std::string>> pairs;
  const Toks& t = f.tokens;
  for (size_t i = 0; i + 4 < t.size(); ++i) {
    if (Is(t, i, "::") && IsIdent(t, i + 1) && t[i + 1].text.rfind('k', 0) == 0 &&
        Is(t, i + 2, ")") && Is(t, i + 3, ",") && i + 4 < t.size() &&
        t[i + 4].kind == TokKind::kString) {
      pairs.emplace_back(t[i + 1].text, t[i + 4].text);
    }
  }
  return pairs;
}

// Rows of the generated markdown table: (opcode, name, md line).
struct MdRow {
  uint32_t opcode;
  std::string name;
  int line;
};

std::vector<MdRow> ParseMdTable(const std::string& md, const std::string& marker,
                                bool* found) {
  std::vector<MdRow> rows;
  *found = false;
  const std::string begin = "<!-- BEGIN GENERATED: " + marker + " -->";
  const std::string end = "<!-- END GENERATED: " + marker + " -->";
  std::istringstream in(md);
  std::string line_text;
  int line_no = 0;
  bool inside = false;
  while (std::getline(in, line_text)) {
    ++line_no;
    if (line_text.find(begin) != std::string::npos) {
      inside = true;
      *found = true;
      continue;
    }
    if (line_text.find(end) != std::string::npos) break;
    if (!inside || line_text.rfind("| ", 0) != 0) continue;
    // "| 10 | Fetch | ..." — skip the header and separator rows.
    std::istringstream cells(line_text);
    std::string bar, num, bar2, name;
    cells >> bar >> num >> bar2 >> name;
    if (num.empty() || !std::isdigit(static_cast<unsigned char>(num[0]))) continue;
    rows.push_back({static_cast<uint32_t>(std::stoul(num)), name, line_no});
  }
  return rows;
}

void CheckOpcodeSync(const LintInput& in, std::vector<Diagnostic>& out) {
  static const OpService kServices[] = {
      {"src/vice/protocol.h", "Proc", "src/vice/protocol.cc", "vice-op-table"},
      {"src/protection/protection_rpc.h", "ProtectionProc",
       "src/protection/protection_rpc.cc", "protection-op-table"},
  };
  for (const OpService& svc : kServices) {
    const LexedFile* header = FindFile(in, svc.header);
    const LexedFile* source = FindFile(in, svc.source);
    if (header == nullptr || source == nullptr) continue;
    auto enum_entries = ParseEnum(*header, svc.enum_name);
    auto schema = ParseSchemaPairs(*source);
    if (enum_entries.empty()) continue;

    std::map<std::string, std::string> schema_by_enum;  // kFetch -> "Fetch"
    for (const auto& [enum_id, name] : schema) {
      if (schema_by_enum.count(enum_id) > 0) {
        Emit(out, *source, 1, "opcode-sync",
             svc.enum_name + "::" + enum_id + " appears twice in the OpSchema");
      }
      schema_by_enum[enum_id] = name;
      auto it = enum_entries.find(enum_id);
      if (it == enum_entries.end()) {
        Emit(out, *source, 1, "opcode-sync",
             "OpSchema references " + svc.enum_name + "::" + enum_id +
                 " which is not an enumerator in " + svc.header);
      } else if ("k" + name != enum_id) {
        Emit(out, *header, it->second.second, "opcode-sync",
             svc.enum_name + "::" + enum_id + " is named \"" + name +
                 "\" in the OpSchema; enumerator and wire name must match");
      }
    }
    for (const auto& [enum_id, entry] : enum_entries) {
      if (schema_by_enum.count(enum_id) == 0) {
        Emit(out, *header, entry.second, "opcode-sync",
             svc.enum_name + "::" + enum_id + " has no OpSchema entry in " + svc.source);
      }
    }

    if (in.protocol_md.empty()) continue;
    bool found = false;
    auto rows = ParseMdTable(in.protocol_md, svc.md_marker, &found);
    if (!found) {
      out.push_back({"docs/PROTOCOL.md", 1, "opcode-sync",
                     "generated table marker '" + svc.md_marker + "' not found"});
      continue;
    }
    // Expected rows from enum+schema, in opcode order — exactly what
    // RenderOpTable emits.
    std::vector<std::pair<uint32_t, std::string>> expect;
    for (const auto& [enum_id, name] : schema) {
      auto it = enum_entries.find(enum_id);
      if (it != enum_entries.end()) expect.emplace_back(it->second.first, name);
    }
    std::sort(expect.begin(), expect.end());
    std::vector<std::pair<uint32_t, std::string>> got;
    got.reserve(rows.size());
    for (const MdRow& r : rows) got.emplace_back(r.opcode, r.name);
    if (got != expect) {
      for (const auto& [code, name] : expect) {
        if (std::find(got.begin(), got.end(), std::make_pair(code, name)) == got.end()) {
          out.push_back({"docs/PROTOCOL.md", 1, "opcode-sync",
                         "table '" + svc.md_marker + "' is missing op " +
                             std::to_string(code) + " " + name +
                             " (regenerate from RenderOpTable)"});
        }
      }
      for (const MdRow& r : rows) {
        if (std::find(expect.begin(), expect.end(),
                      std::make_pair(r.opcode, r.name)) == expect.end()) {
          out.push_back({"docs/PROTOCOL.md", r.line, "opcode-sync",
                         "table '" + svc.md_marker + "' lists op " +
                             std::to_string(r.opcode) + " " + r.name +
                             " which the OpSchema does not define"});
        }
      }
    }
  }
}

// --- sim-determinism ---------------------------------------------------------------

bool DeterminismExempt(const std::string& path) {
  return path.rfind("src/sim/", 0) == 0 || path == "src/common/rng.h";
}

struct BannedUse {
  size_t tok;       // token index of the banned identifier
  bool call;        // true for time(/rand(/clock( style direct calls
};

// All banned wall-clock/entropy uses in t[begin, end). Shared by the direct
// per-file rule and the transitive rule's seed scan.
std::vector<BannedUse> BannedDeterminismUses(const Toks& t, size_t begin, size_t end) {
  // Identifiers that smuggle in wall-clock time or ambient randomness and
  // would make two runs of the simulation diverge.
  static const std::set<std::string> banned = {
      "system_clock", "steady_clock",  "high_resolution_clock", "random_device",
      "srand",        "gettimeofday",  "clock_gettime",         "localtime",
      "gmtime",       "__DATE__",      "__TIME__",              "__TIMESTAMP__"};
  // Banned only as a direct call: `time(...)`, `rand()`. (`x.time(` is a
  // member of some unrelated class; `foo_time(` is a different identifier.)
  static const std::set<std::string> banned_calls = {"time", "rand", "clock"};
  std::vector<BannedUse> uses;
  for (size_t i = begin; i < end && i < t.size(); ++i) {
    if (!IsIdent(t, i)) continue;
    const std::string& name = t[i].text;
    if (banned.count(name) > 0) {
      uses.push_back({i, false});
      continue;
    }
    if (banned_calls.count(name) > 0 && Is(t, i + 1, "(")) {
      const bool member = i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      const bool qualified = i > 0 && t[i - 1].text == "::";
      const bool std_qualified = qualified && i > 1 && t[i - 2].text == "std";
      if (member || (qualified && !std_qualified)) continue;
      // A type or `&`/`*` before the name makes this a declaration of an
      // unrelated accessor (e.g. `sim::Clock& clock()`), not a libc call.
      if (i > 0 && (t[i - 1].text == "&" || t[i - 1].text == "*" ||
                    (IsIdent(t, i - 1) && t[i - 1].text != "return"))) {
        continue;
      }
      uses.push_back({i, true});
    }
  }
  return uses;
}

void CheckSimDeterminism(const LexedFile& f, std::vector<Diagnostic>& out) {
  if (DeterminismExempt(f.path)) return;
  const Toks& t = f.tokens;
  for (const BannedUse& u : BannedDeterminismUses(t, 0, t.size())) {
    if (u.call) {
      Emit(out, f, t[u.tok].line, "sim-determinism",
           "call to '" + t[u.tok].text + "(' is nondeterministic; use sim::Clock / "
           "common/rng.h");
    } else {
      Emit(out, f, t[u.tok].line, "sim-determinism",
           "'" + t[u.tok].text + "' is nondeterministic; use sim::Clock / common/rng.h "
           "(only src/sim/ and src/common/rng.h may touch real time or entropy)");
    }
  }
}

// --- resource-serve-outside-kernel --------------------------------------------------

bool ResourceServeExempt(const std::string& path) {
  // src/sim/ is the implementation of the staged API (the kernel's Charge is
  // the one sanctioned Serve call site); everything else goes through it.
  return path.rfind("src/sim/", 0) == 0;
}

void CheckResourceServeOutsideKernel(const LexedFile& f, std::vector<Diagnostic>& out) {
  if (ResourceServeExempt(f.path)) return;
  const Toks& t = f.tokens;
  for (size_t i = 1; i < t.size(); ++i) {
    if (!IsIdent(t, i) || t[i].text != "Serve") continue;
    if (!Is(t, i + 1, "(")) continue;
    // Only member calls: `Serve` is the Resource API; a free function or a
    // declaration of the same name is something else.
    if (t[i - 1].text != "." && t[i - 1].text != "->") continue;
    Emit(out, f, t[i].line, "resource-serve-outside-kernel",
         "direct Resource::Serve bypasses the event kernel's arrival-order "
         "queueing; charge the demand through sim::Charge (src/sim/kernel.h)");
  }
}

// --- no-alloc-in-kernel-hot-path ----------------------------------------------------

const std::set<std::string>& ContainerGrowthCalls() {
  // Member calls that can grow a container (and therefore allocate). pop_back
  // and in-place writes (`buf[i] = x`) are deliberately absent: the hot path
  // may shrink and overwrite, it may not grow.
  static const std::set<std::string> g = {"push_back", "emplace_back", "push",
                                          "emplace",   "insert",       "resize",
                                          "reserve",   "assign",       "append"};
  return g;
}

// Description of the allocation starting at token j ("'new'", "container
// growth ('push_back')"), or "" when j does not allocate. Shared by the
// direct hot-path rule and its transitive extension.
std::string AllocAt(const Toks& t, size_t j) {
  if (!IsIdent(t, j)) return "";
  const std::string& name = t[j].text;
  if (name == "new") return "'new'";
  if ((name == "make_unique" || name == "make_shared") &&
      (Is(t, j + 1, "<") || Is(t, j + 1, "("))) {
    return "'" + name + "'";
  }
  if (ContainerGrowthCalls().count(name) > 0 && Is(t, j + 1, "(") && j > 0 &&
      (t[j - 1].text == "." || t[j - 1].text == "->")) {
    return "container growth ('" + name + "')";
  }
  return "";
}

void CheckNoAllocInKernelHotPath(const LexedFile& f, std::vector<Diagnostic>& out) {
  const Toks& t = f.tokens;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    // Kernel::Name ( ... ) ... { body }
    if (!Is(t, i, "Kernel") || !Is(t, i + 1, "::") || !IsIdent(t, i + 2) ||
        !Is(t, i + 3, "(")) {
      continue;
    }
    const std::string& fname = t[i + 2].text;
    const bool hot = fname == "Dispatch" || fname.rfind("Run", 0) == 0;
    size_t k = SkipBalanced(t, i + 3, "(", ")");
    while (k < t.size() && !Is(t, k, "{") && !Is(t, k, ";")) ++k;
    if (k >= t.size() || Is(t, k, ";")) continue;
    const size_t body_end = SkipBalanced(t, k, "{", "}");
    if (hot) {
      for (size_t j = k; j < body_end; ++j) {
        std::string what = AllocAt(t, j);
        if (!what.empty()) {
          Emit(out, f, t[j].line, "no-alloc-in-kernel-hot-path",
               what + " in Kernel::" + fname +
                   ": the steady-state event loop must not allocate per event; "
                   "pre-size in Spawn/EnableTrace or suppress for a cold path");
        }
      }
    }
    i = body_end - 1;
  }
}

// --- assert rules -------------------------------------------------------------------

void CheckAsserts(const LexedFile& f, bool run_side_effect, bool run_header,
                  std::vector<Diagnostic>& out) {
  static const std::set<std::string> mutating = {"++", "--", "=",  "+=",  "-=", "*=",
                                                 "/=", "%=", "&=", "|=",  "^=", "<<=",
                                                 ">>="};
  const Toks& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!Is(t, i, "assert") || !Is(t, i + 1, "(")) continue;
    // `#define assert` or `foo.assert(` are not the C assert macro.
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->" ||
                  t[i - 1].text == "define")) {
      continue;
    }
    if (run_header && f.IsHeader()) {
      Emit(out, f, t[i].line, "assert-in-header",
           "assert() in a header is a silent no-op under the default NDEBUG "
           "build; use ITC_CHECK from src/common/logging.h");
    }
    if (run_side_effect) {
      const size_t end = SkipBalanced(t, i + 1, "(", ")");
      for (size_t j = i + 2; j + 1 < end; ++j) {
        if (t[j].kind == TokKind::kPunct && mutating.count(t[j].text) > 0) {
          Emit(out, f, t[i].line, "assert-side-effect",
               "assert() condition contains '" + t[j].text +
                   "'; the side effect vanishes under NDEBUG");
          break;
        }
      }
    }
  }
}

// --- vfs-dispatch-only --------------------------------------------------------------

bool VfsDispatchExempt(const std::string& path) {
  // The mount backends are the sanctioned adapters; Venus and the baseline
  // own their respective clients.
  return path.rfind("src/virtue/vfs/", 0) == 0 || path.rfind("src/venus/", 0) == 0 ||
         path.rfind("src/baseline/", 0) == 0;
}

const std::set<std::string>& VenusFileOps() {
  // The data-plane surface of Venus. Control-plane calls (Login, Logout,
  // user, stats, FlushCache, set_escape_predicate, ...) stay legal anywhere.
  static const std::set<std::string> ops = {
      "Open",   "Close",  "Stat",     "ReadDir",  "MkDir",   "Remove",
      "RmDir",  "Rename", "Symlink",  "ReadLink", "SetMode"};
  return ops;
}

void CheckVfsDispatchOnly(const LexedFile& f, std::vector<Diagnostic>& out) {
  if (VfsDispatchExempt(f.path)) return;
  const Toks& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    // `baseline::RemoteOpenClient` outside the sanctioned dirs: a parallel
    // remote-open universe instead of a mount-table entry.
    if (Is(t, i, "baseline") && Is(t, i + 1, "::") && Is(t, i + 2, "RemoteOpenClient")) {
      Emit(out, f, t[i].line, "vfs-dispatch-only",
           "direct use of baseline::RemoteOpenClient bypasses the VFS switch; "
           "attach a vfs::RemoteMount instead (src/virtue/vfs/remote_mount.h)");
      continue;
    }
    // `venus_->Op(` / `venus().Op(` where Op is a Venus file operation.
    size_t op = 0;
    if (Is(t, i, "venus_") && (Is(t, i + 1, "->") || Is(t, i + 1, "."))) {
      op = i + 2;
    } else if (Is(t, i, "venus") && Is(t, i + 1, "(") && Is(t, i + 2, ")") &&
               (Is(t, i + 3, ".") || Is(t, i + 3, "->"))) {
      op = i + 4;
    } else {
      continue;
    }
    if (!IsIdent(t, op) || !Is(t, op + 1, "(")) continue;
    if (VenusFileOps().count(t[op].text) == 0) continue;
    Emit(out, f, t[i].line, "vfs-dispatch-only",
         "direct Venus file operation '" + t[op].text +
             "' bypasses the VFS switch; dispatch through vfs::Switch so the "
             "mount table, escape protocol, and descriptor state stay "
             "authoritative");
  }
}

// --- no-raw-lease-term --------------------------------------------------------------

bool LeaseTermExempt(const std::string& path) {
  // The two places a lease duration is CONFIGURED rather than used: the
  // server term (ViceConfig::lease_term) and the client renewal margin
  // (VenusConfig::lease_renew_margin). Everywhere else reads those fields.
  return path == "src/vice/file_server.h" || path == "src/venus/config.h";
}

bool IsTimeUnitCall(const Toks& t, size_t i) {
  static const std::set<std::string> units = {"Micros", "Millis", "Seconds", "Minutes"};
  return IsIdent(t, i) && units.count(t[i].text) > 0 && Is(t, i + 1, "(") &&
         i + 2 < t.size() && t[i + 2].kind == TokKind::kNumber;
}

bool IsLeaseIdent(const Toks& t, size_t i) {
  if (!IsIdent(t, i)) return false;
  std::string lower = t[i].text;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower.find("lease") != std::string::npos;
}

void CheckNoRawLeaseTerm(const LexedFile& f, std::vector<Diagnostic>& out) {
  if (LeaseTermExempt(f.path)) return;
  const Toks& t = f.tokens;
  // Statement granularity: a numeric time literal is a raw lease term when
  // the same `;`/`{`/`}`-delimited statement also names something lease-ish
  // (lease_term, lease_expiry, SuspendGrantsUntil-style callers spell one).
  size_t start = 0;
  for (size_t i = 0; i <= t.size(); ++i) {
    const bool boundary =
        i == t.size() || (t[i].kind == TokKind::kPunct &&
                          (t[i].text == ";" || t[i].text == "{" || t[i].text == "}"));
    if (!boundary) continue;
    int lease_line = 0;
    size_t literal_at = 0;
    for (size_t k = start; k < i; ++k) {
      if (IsLeaseIdent(t, k)) lease_line = t[k].line;
      if (IsTimeUnitCall(t, k)) literal_at = k;
    }
    if (lease_line != 0 && literal_at != 0) {
      Emit(out, f, t[literal_at].line, "no-raw-lease-term",
           "numeric time literal in a lease-term expression; lease durations "
           "come from ViceConfig::lease_term / VenusConfig::lease_renew_margin "
           "so the embargo and staleness bounds track the configured term");
    }
    start = i + 1;
  }
}

// --- no-eager-contents --------------------------------------------------------------

// Where materializing synthetic contents is the module's job: the content
// module itself, and the legacy SynthesizeContents definition (which now
// delegates to content::Ref and documents the transient-use contract).
bool EagerContentsExempt(const std::string& path) {
  return path == "src/common/content.h" || path == "src/common/content.cc" ||
         path == "src/workload/source_tree.h" || path == "src/workload/source_tree.cc";
}

void CheckNoEagerContents(const LexedFile& f, std::vector<Diagnostic>& out) {
  if (EagerContentsExempt(f.path)) return;
  const Toks& t = f.tokens;
  // (a) Any SynthesizeContents call materializes the full byte vector. At
  // populate scale that is exactly the ~2 MB/client footprint the lazy
  // representation removed; transient uses (an RPC payload that is consumed
  // and freed) carry an explicit allow().
  for (size_t i = 0; i < t.size(); ++i) {
    if (IsIdent(t, i) && t[i].text == "SynthesizeContents" && Is(t, i + 1, "(")) {
      Emit(out, f, t[i].line, "no-eager-contents",
           "SynthesizeContents materializes full file bytes; hold a lazy "
           "content::Ref (content::Ref::ForSeed) and let the rest point "
           "canonicalize, or suppress with allow(no-eager-contents) where the "
           "buffer is genuinely transient (wire payload, byte-equality check)");
    }
  }
  // (b) Statement granularity (same scheme as no-raw-lease-term): a
  // Materialize() call in the same statement as a Populate* call is the
  // populate-scale deep copy the representation exists to avoid — the ref
  // overload of Campus::PopulateDirect takes the ref itself.
  size_t start = 0;
  for (size_t i = 0; i <= t.size(); ++i) {
    const bool boundary =
        i == t.size() || (t[i].kind == TokKind::kPunct &&
                          (t[i].text == ";" || t[i].text == "{" || t[i].text == "}"));
    if (!boundary) continue;
    int mat_line = 0;
    bool populate = false;
    for (size_t k = start; k < i; ++k) {
      if (!IsIdent(t, k)) continue;
      if (t[k].text == "Materialize" && Is(t, k + 1, "(")) mat_line = t[k].line;
      if (t[k].text.rfind("Populate", 0) == 0 && Is(t, k + 1, "(")) populate = true;
    }
    if (populate && mat_line != 0) {
      Emit(out, f, mat_line, "no-eager-contents",
           "Materialize() in a populate call defeats the lazy representation; "
           "pass the content::Ref itself (Campus::PopulateDirect has a ref "
           "overload)");
    }
    start = i + 1;
  }
}

// --- kernel-ownership (interprocedural) ---------------------------------------------

void CheckKernelOwnership(const SymbolIndex& idx, const CallGraph& g,
                          std::vector<Diagnostic>& out) {
  std::vector<size_t> roots;
  for (size_t i = 0; i < idx.functions.size(); ++i) {
    if (idx.functions[i].entry || idx.functions[i].quiescent) roots.push_back(i);
  }
  const std::vector<bool> sanctioned = Reachable(g, roots);

  for (const OwnedMember& m : idx.owned) {
    for (size_t fi = 0; fi < idx.functions.size(); ++fi) {
      const FunctionDef& f = idx.functions[fi];
      if (f.cls != m.cls || f.IsCtorOrDtor() || sanctioned[fi]) continue;
      // Per-shard state accepts the ITC_SHARD_FOREIGN waiver: the method is
      // a declared cross-shard touch (documented debt), not an oversight.
      if (m.shard && f.shard_foreign) continue;
      const Toks& t = f.file->tokens;
      for (size_t j = f.body_begin; j < f.body_end && j < t.size(); ++j) {
        if (t[j].pp || !IsIdent(t, j) || t[j].text != m.name) continue;
        if (m.shard) {
          Emit(out, *f.file, t[j].line, "kernel-ownership",
               "'" + m.name + "' is ITC_OWNED_BY_SHARD state of " + m.cls +
                   " — it belongs to one shard of the kernel group — but '" +
                   f.Qualified() +
                   "' is not reachable from any ITC_KERNEL_ENTRY or "
                   "ITC_KERNEL_QUIESCENT function; mark the entry point, route "
                   "the access through one, or declare the cross-shard touch "
                   "with ITC_SHARD_FOREIGN (src/common/ownership.h)");
        } else {
          Emit(out, *f.file, t[j].line, "kernel-ownership",
               "'" + m.name + "' is ITC_OWNED_BY_KERNEL state of " + m.cls +
                   ", but '" + f.Qualified() +
                   "' is not reachable from any ITC_KERNEL_ENTRY or "
                   "ITC_KERNEL_QUIESCENT function; mark the entry point or route the "
                   "access through one (src/common/ownership.h)");
        }
        break;  // one diagnostic per (member, method) is enough
      }
    }
  }
}

// --- no-alloc-in-kernel-hot-path-transitive -----------------------------------------

void CheckNoAllocTransitive(const SymbolIndex& idx, const CallGraph& g,
                            std::vector<Diagnostic>& out) {
  // The steady-state roots: the event loop itself plus WaitUntil, which every
  // activity suspension runs through.
  std::vector<size_t> roots;
  for (size_t i = 0; i < idx.functions.size(); ++i) {
    const FunctionDef& f = idx.functions[i];
    if (f.cls == "Kernel" &&
        (f.name == "Dispatch" || f.name == "WaitUntil" || f.name.rfind("Run", 0) == 0)) {
      roots.push_back(i);
    }
  }
  const std::vector<bool> reach = Reachable(g, roots);

  for (size_t fi = 0; fi < idx.functions.size(); ++fi) {
    if (!reach[fi]) continue;
    const FunctionDef& f = idx.functions[fi];
    // Run*/Dispatch bodies belong to the direct rule; re-flagging them here
    // would double-report every finding.
    if (f.cls == "Kernel" && (f.name == "Dispatch" || f.name.rfind("Run", 0) == 0))
      continue;
    const Toks& t = f.file->tokens;
    for (size_t j = f.body_begin; j < f.body_end && j < t.size(); ++j) {
      if (t[j].pp) continue;
      std::string what = AllocAt(t, j);
      if (what.empty()) continue;
      Emit(out, *f.file, t[j].line, "no-alloc-in-kernel-hot-path-transitive",
           what + " in '" + f.Qualified() +
               "', which is reachable from the kernel hot path "
               "(Kernel::Run*/Dispatch/WaitUntil); the event loop must stay "
               "allocation-free per event — pre-size, or suppress with a reason "
               "for a cold path");
    }
  }
}

// --- sim-determinism-transitive -----------------------------------------------------

void CheckSimDeterminismTransitive(const SymbolIndex& idx, const CallGraph& g,
                                   std::vector<Diagnostic>& out) {
  const std::string rule = "sim-determinism-transitive";
  // Seed taint: functions in non-exempt files whose bodies contain a banned
  // use. Note allow(sim-determinism) silences only the direct diagnostic;
  // sanctioning a wrapper for its *callers* takes an explicit
  // allow(sim-determinism-transitive) on the banned line, which clears the
  // taint here.
  std::vector<bool> tainted(idx.functions.size(), false);
  for (size_t fi = 0; fi < idx.functions.size(); ++fi) {
    const FunctionDef& f = idx.functions[fi];
    if (DeterminismExempt(f.file->path)) continue;
    const Toks& t = f.file->tokens;
    for (const BannedUse& u : BannedDeterminismUses(t, f.body_begin, f.body_end)) {
      const int line = t[u.tok].line;
      const std::vector<size_t> allows = f.file->AllowIndices(line, rule);
      if (!allows.empty()) {
        if (g_usage != nullptr) {
          for (size_t s : allows) g_usage->Mark(*f.file, s, rule);
        }
        continue;
      }
      tainted[fi] = true;
    }
  }

  // Propagate taint caller-ward one unsuppressed call site at a time. A
  // suppressed crossing sanctions the caller (no taint through it); an
  // unsuppressed one is diagnosed and taints the caller, so the closure
  // surfaces every laundering chain in a single run.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CallSite& s : g.sites) {
      if (!tainted[s.callee] || tainted[s.caller]) continue;
      const FunctionDef& caller = idx.functions[s.caller];
      if (DeterminismExempt(caller.file->path)) continue;
      const size_t before = out.size();
      Emit(out, *caller.file, s.line, rule,
           "call to '" + idx.functions[s.callee].Qualified() +
               "' reaches a wall-clock/entropy use; determinism bans cannot be "
               "laundered through helpers — use sim::Clock / common/rng.h, or "
               "sanction the wrapper with allow(sim-determinism-transitive)");
      if (out.size() > before) {
        tainted[s.caller] = true;
        changed = true;
      }
    }
  }
}

// --- rule-doc-sync ------------------------------------------------------------------

void CheckRuleDocSync(const LintInput& in, std::vector<Diagnostic>& out) {
  if (in.lint_md.empty()) return;
  std::map<std::string, int> documented;  // rule id -> heading line
  std::istringstream md(in.lint_md);
  std::string line_text;
  int line_no = 0;
  while (std::getline(md, line_text)) {
    ++line_no;
    const std::string prefix = "### `";
    if (line_text.rfind(prefix, 0) != 0) continue;
    size_t end = line_text.find('`', prefix.size());
    if (end == std::string::npos) continue;
    documented.emplace(line_text.substr(prefix.size(), end - prefix.size()), line_no);
  }
  for (const std::string& rule : AllRules()) {
    if (documented.count(rule) == 0) {
      out.push_back({"docs/LINT.md", 1, "rule-doc-sync",
                     "registered rule '" + rule +
                         "' has no `### \\`" + rule + "\\`` section in docs/LINT.md"});
    }
  }
  for (const auto& [rule, at] : documented) {
    if (AllRules().count(rule) == 0) {
      out.push_back({"docs/LINT.md", at, "rule-doc-sync",
                     "docs/LINT.md documents rule '" + rule +
                         "' which is not registered in AllRules()"});
    }
  }
}

// --- stale-suppression --------------------------------------------------------------

void CheckStaleSuppressions(const LintInput& in, const SuppressionUsage& usage,
                            const std::set<std::string>& only,
                            std::vector<Diagnostic>& out) {
  auto ran = [&only](const std::string& r) { return only.empty() || only.count(r) > 0; };
  const bool full_run = only.empty();
  for (const LexedFile& f : in.files) {
    for (size_t i = 0; i < f.suppressions.size(); ++i) {
      const Suppression& s = f.suppressions[i];
      for (const std::string& r : s.rules) {
        if (r == "all") {
          // Not via Emit: an allow(all) would silence its own staleness
          // report, making an unused one invisible forever.
          if (full_run && !usage.UsedFor(f, i, "")) {
            out.push_back({f.path, s.line, "stale-suppression",
                           "'allow(all)' suppresses nothing; delete it"});
          }
          continue;
        }
        if (AllRules().count(r) == 0) {
          Emit(out, f, s.line, "stale-suppression",
               "unknown rule '" + r + "' in allow(...); see docs/LINT.md for the "
               "catalog");
          continue;
        }
        // Staleness of an allow(stale-suppression) cannot be decided in the
        // same pass that would use it; everything else must have silenced at
        // least one diagnostic of the rule it names.
        if (r == "stale-suppression") continue;
        if (ran(r) && !usage.UsedFor(f, i, r)) {
          Emit(out, f, s.line, "stale-suppression",
               "'allow(" + r + ")' suppresses nothing here; delete it or fix the "
               "rule id");
        }
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> RunRules(const LintInput& input, const std::set<std::string>& only) {
  auto enabled = [&only](const std::string& rule) {
    return only.empty() || only.count(rule) > 0;
  };

  SuppressionUsage usage;
  g_usage = &usage;
  std::vector<Diagnostic> out;

  // Declaration harvest feeds both halves of the error-discipline rule.
  DeclIndex index;
  const bool check_nodiscard = enabled("nodiscard-status");
  const bool check_discard = enabled("discarded-status");
  if (check_nodiscard || check_discard) {
    for (const LexedFile& f : input.files) {
      if (f.IsHeader()) CheckNodiscardAndHarvest(f, index, check_nodiscard, out);
    }
  }
  if (check_discard) {
    for (const LexedFile& f : input.files) CheckDiscardedCalls(f, index, out);
  }
  if (enabled("intention-before-mutate")) {
    for (const LexedFile& f : input.files) {
      if (f.path == "src/vice/file_server.cc") CheckIntentionBeforeMutate(f, out);
    }
  }
  if (enabled("opcode-sync")) CheckOpcodeSync(input, out);
  if (enabled("sim-determinism")) {
    for (const LexedFile& f : input.files) CheckSimDeterminism(f, out);
  }
  if (enabled("resource-serve-outside-kernel")) {
    for (const LexedFile& f : input.files) CheckResourceServeOutsideKernel(f, out);
  }
  if (enabled("no-alloc-in-kernel-hot-path")) {
    for (const LexedFile& f : input.files) CheckNoAllocInKernelHotPath(f, out);
  }
  if (enabled("vfs-dispatch-only")) {
    for (const LexedFile& f : input.files) CheckVfsDispatchOnly(f, out);
  }
  if (enabled("no-raw-lease-term")) {
    for (const LexedFile& f : input.files) CheckNoRawLeaseTerm(f, out);
  }
  if (enabled("no-eager-contents")) {
    for (const LexedFile& f : input.files) CheckNoEagerContents(f, out);
  }
  const bool side = enabled("assert-side-effect");
  const bool header = enabled("assert-in-header");
  if (side || header) {
    for (const LexedFile& f : input.files) CheckAsserts(f, side, header, out);
  }

  // The interprocedural rules share one symbol index + call graph build.
  const bool ownership = enabled("kernel-ownership");
  const bool alloc_trans = enabled("no-alloc-in-kernel-hot-path-transitive");
  const bool det_trans = enabled("sim-determinism-transitive");
  if (ownership || alloc_trans || det_trans) {
    const SymbolIndex idx = BuildIndex(input.files);
    const CallGraph graph = BuildCallGraph(idx);
    if (ownership) CheckKernelOwnership(idx, graph, out);
    if (alloc_trans) CheckNoAllocTransitive(idx, graph, out);
    if (det_trans) CheckSimDeterminismTransitive(idx, graph, out);
  }

  if (enabled("rule-doc-sync")) CheckRuleDocSync(input, out);
  // Last: every other rule has recorded which suppressions it consumed.
  if (enabled("stale-suppression")) CheckStaleSuppressions(input, usage, only, out);
  g_usage = nullptr;

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace itc::lint
