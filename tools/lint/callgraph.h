// Lint v2, pass 2 substrate: a conservative call graph over the symbol
// index.
//
// Edges come from three syntactic shapes inside a function definition's
// body token range (lambda bodies included, since they fall inside the
// enclosing definition's range):
//
//   Foo(...)            — resolved by unqualified name to *every* function
//   x.Foo(...) etc.       definition named Foo, any class. Over-approximate
//   ns::Foo(...)          on purpose: a rule that gates on "not reachable"
//                         must never miss a path because the linter could
//                         not type-check a receiver.
//   &Cls::Foo           — member-function pointer reference (the kernel
//                         backends take these), resolved to Cls's Foo.
//
// What the graph deliberately does NOT see: calls through a std::function
// or other type-erased value (`handler(ctx, bytes)` where handler is a
// variable). Those are the sanctioned ownership cut points — the code that
// *binds* the callable (e.g. ViceServer::BindOps) gets the edge, because
// the bind site is written as a lambda whose body names the target.

#ifndef TOOLS_LINT_CALLGRAPH_H_
#define TOOLS_LINT_CALLGRAPH_H_

#include <set>
#include <vector>

#include "tools/lint/symbols.h"

namespace itc::lint {

struct CallSite {
  size_t caller;  // index into SymbolIndex::functions
  size_t callee;
  int line;  // line of the call, in caller's file
};

struct CallGraph {
  std::vector<std::set<size_t>> callees;  // function index -> callee indices
  std::vector<CallSite> sites;
};

CallGraph BuildCallGraph(const SymbolIndex& idx);

// Functions reachable from `roots` (inclusive) by forward edge traversal.
std::vector<bool> Reachable(const CallGraph& g, const std::vector<size_t>& roots);

}  // namespace itc::lint

#endif  // TOOLS_LINT_CALLGRAPH_H_
