// A lightweight C++ lexer for itcfs-lint.
//
// The linter does not parse C++; every rule works on a token stream plus a
// little context (previous/next token, balanced-bracket scans, and — since
// lint v2 — the repo-wide symbol index and call graph built on top of the
// per-file streams by tools/lint/symbols.h and tools/lint/callgraph.h). The
// lexer therefore has to be faithful about the things that would otherwise
// produce false positives or a wrong call graph: comments, string/char
// literals (including raw strings and encoding prefixes), backslash line
// continuations, preprocessor directives, and multi-character operators, so
// that e.g. an `assert(` inside a string or a `++` inside a comment is
// never mistaken for code.
//
// Suppression comments are collected during lexing: a comment of the form
//   // itcfs-lint: allow(rule-id, other-rule-id)
// suppresses those rules on the comment's own line and on the next line
// (so it works both as a trailing comment and on a line of its own). Each
// comment is also retained as a Suppression record so the driver can flag
// stale suppressions (unknown rule ids, or allows that no longer suppress
// anything).

#ifndef TOOLS_LINT_LEXER_H_
#define TOOLS_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace itc::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords, including pp-directive names
  kNumber,  // numeric literals (value is irrelevant to every rule)
  kString,  // "..." including raw strings; text is the literal's contents
  kChar,    // '...'
  kPunct,   // operators and punctuation, multi-char ops as one token
};

struct Token {
  TokKind kind;
  std::string text;
  int line;        // 1-based line the token starts on
  bool pp = false; // true when the token is part of a preprocessor directive
};

// One `itcfs-lint: allow(...)` comment, as written. `line` is the line the
// comment binds to (its own line; for block comments, the line it ends on).
struct Suppression {
  int line = 0;
  std::set<std::string> rules;
};

struct LexedFile {
  std::string path;  // repo-relative, forward slashes
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  // line -> indices into `suppressions` covering that line (already expanded
  // to cover the comment's line and the following line).
  std::map<int, std::vector<size_t>> allow;

  bool IsHeader() const;
  bool Allowed(int line, const std::string& rule) const;
  // Indices of the suppressions that allow `rule` on `line` (via the rule's
  // own id or `all`); empty when the diagnostic must be emitted. The driver
  // marks these used for the stale-suppression check.
  std::vector<size_t> AllowIndices(int line, const std::string& rule) const;
};

// Lexes `src`. Never fails: bytes it cannot classify become single-char
// punct tokens, which no rule matches.
LexedFile Lex(std::string path, std::string_view src);

}  // namespace itc::lint

#endif  // TOOLS_LINT_LEXER_H_
