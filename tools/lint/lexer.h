// A lightweight C++ lexer for itcfs-lint.
//
// The linter does not parse C++; every rule works on a per-file token
// stream plus a little context (previous/next token, balanced-bracket
// scans). The lexer therefore only has to be faithful about the things
// that would otherwise produce false positives: comments, string/char
// literals (including raw strings), and multi-character operators, so
// that e.g. an `assert(` inside a string or a `++` inside a comment is
// never mistaken for code.
//
// Suppression comments are collected during lexing: a comment of the form
//   // itcfs-lint: allow(rule-id, other-rule-id)
// suppresses those rules on the comment's own line and on the next line
// (so it works both as a trailing comment and on a line of its own).

#ifndef TOOLS_LINT_LEXER_H_
#define TOOLS_LINT_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace itc::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords, including pp-directive names
  kNumber,  // numeric literals (value is irrelevant to every rule)
  kString,  // "..." including raw strings; text is the literal's contents
  kChar,    // '...'
  kPunct,   // operators and punctuation, multi-char ops as one token
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based line the token starts on
};

struct LexedFile {
  std::string path;  // repo-relative, forward slashes
  std::vector<Token> tokens;
  // line -> rule ids allowed on that line (already expanded to cover the
  // comment's line and the following line).
  std::map<int, std::set<std::string>> allow;

  bool IsHeader() const;
  bool Allowed(int line, const std::string& rule) const;
};

// Lexes `src`. Never fails: bytes it cannot classify become single-char
// punct tokens, which no rule matches.
LexedFile Lex(std::string path, std::string_view src);

}  // namespace itc::lint

#endif  // TOOLS_LINT_LEXER_H_
