// vos — volume operations shell, after the AFS administrator tool of the
// same name. Drives a simulated campus's VolumeRegistry: create, mount,
// move, clone, release read-only replicas, set quotas, salvage, examine —
// plus backup dumps written to and restored from REAL host files, so a dump
// survives across invocations.
//
//   $ ./build/tools/vos
//   vos> create user.alice 0 5242880
//   vos> mount /usr alice user.alice
//   vos> backup 2 /tmp/alice.dump
//   vos> restore /tmp/alice.dump user.alice.restored 1
//   vos> examine 2
//   vos> monitor

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/campus/campus.h"
#include "src/common/path.h"
#include "src/vice/monitor.h"

using namespace itc;

namespace {

void Help() {
  std::printf(
      "commands:\n"
      "  create <name> <server> [quota]      create a read-write volume\n"
      "  mount <dir-path> <entry> <volid>    mount under a root-volume directory\n"
      "  move <volid> <server>               change custodian\n"
      "  clone <volid> <name>                frozen read-only clone at custodian\n"
      "  release <volid> <name> <s1,s2,...>  read-only replicas at servers\n"
      "  online <volid> 0|1                  offline/online\n"
      "  quota <volid> <bytes>               set quota\n"
      "  salvage <volid>                     consistency check & repair\n"
      "  backup <volid> <host-file>          dump a frozen snapshot to a file\n"
      "  restore <host-file> <name> <server> recreate a volume from a dump\n"
      "  examine <volid>                     volume status\n"
      "  listvldb                            the location database\n"
      "  monitor                             access-pattern scan + recommendations\n"
      "  apply                               apply all monitor recommendations\n"
      "  quit\n");
}

// Resolves a /-path of directories inside the ROOT volume to its fid.
Result<Fid> ResolveRootDir(campus::Campus& campus, const std::string& path) {
  vice::Volume* root =
      campus.registry().FindVolume(campus.registry().location().root_volume);
  if (root == nullptr) return Status::kNotFound;
  Fid cur = root->root();
  for (const std::string& comp : SplitPath(path)) {
    auto data = root->FetchData(cur);
    if (!data.ok()) return data.status();
    auto entries = vice::DeserializeDirectory(*data);
    if (!entries.ok()) return Status::kInternal;
    auto it = entries->find(comp);
    if (it == entries->end()) return Status::kNotFound;
    cur = it->second.fid;
  }
  return cur;
}

}  // namespace

int main() {
  campus::Campus campus(campus::CampusConfig::Revised(3, 2));
  if (!campus.SetupRootVolume().ok()) return 1;
  std::printf("vos: %s\n", campus.topology().Describe().c_str());
  std::printf("root volume is %u; type 'help' for commands\n",
              campus.registry().location().root_volume);

  vice::Monitor monitor(&campus.registry(), 0.6, 20);
  std::vector<vice::MoveRecommendation> pending;

  std::string line;
  std::printf("vos> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd.empty()) {
    } else if (cmd == "help") {
      Help();
    } else if (cmd == "create") {
      std::string name;
      ServerId server = 0;
      uint64_t quota = 0;
      in >> name >> server >> quota;
      protection::AccessList acl;
      acl.SetPositive(protection::Principal::Group(protection::kAnyUserGroup),
                      protection::kAllRights);
      auto vid = campus.registry().CreateVolume(name, server, kAnonymousUser, acl, quota);
      if (vid.ok()) {
        std::printf("created volume %u at server %u\n", *vid, server);
      } else {
        std::printf("%s\n", StatusName(vid.status()).data());
      }
    } else if (cmd == "mount") {
      std::string dir, entry;
      VolumeId vid = 0;
      in >> dir >> entry >> vid;
      auto fid = ResolveRootDir(campus, dir);
      if (!fid.ok()) {
        std::printf("resolve %s: %s\n", dir.c_str(), StatusName(fid.status()).data());
      } else {
        std::printf("%s\n", StatusName(campus.registry().MountAt(*fid, entry, vid)).data());
      }
    } else if (cmd == "move") {
      VolumeId vid = 0;
      ServerId server = 0;
      in >> vid >> server;
      std::printf("%s\n", StatusName(campus.registry().MoveVolume(vid, server)).data());
    } else if (cmd == "clone") {
      VolumeId vid = 0;
      std::string name;
      in >> vid >> name;
      auto clone = campus.registry().CloneVolume(vid, name);
      if (clone.ok()) {
        std::printf("clone is volume %u\n", *clone);
      } else {
        std::printf("%s\n", StatusName(clone.status()).data());
      }
    } else if (cmd == "release") {
      VolumeId vid = 0;
      std::string name, sites_csv;
      in >> vid >> name >> sites_csv;
      std::vector<ServerId> sites;
      std::istringstream ss(sites_csv);
      std::string tok;
      while (std::getline(ss, tok, ',')) sites.push_back(std::stoul(tok));
      auto ro = campus.registry().ReleaseReadOnly(vid, name, sites);
      if (ro.ok()) {
        std::printf("released clone %u at %zu site(s)\n", *ro, sites.size());
      } else {
        std::printf("%s\n", StatusName(ro.status()).data());
      }
    } else if (cmd == "online") {
      VolumeId vid = 0;
      int flag = 1;
      in >> vid >> flag;
      std::printf("%s\n",
                  StatusName(campus.registry().SetVolumeOnline(vid, flag != 0)).data());
    } else if (cmd == "quota") {
      VolumeId vid = 0;
      uint64_t q = 0;
      in >> vid >> q;
      std::printf("%s\n", StatusName(campus.registry().SetVolumeQuota(vid, q)).data());
    } else if (cmd == "salvage") {
      VolumeId vid = 0;
      in >> vid;
      auto report = campus.registry().SalvageVolume(vid);
      if (!report.ok()) {
        std::printf("%s\n", StatusName(report.status()).data());
      } else {
        std::printf("dangling=%u orphans=%u parents-fixed=%u usage-corrected=%llu (%s)\n",
                    report->dangling_entries_removed, report->orphan_vnodes_removed,
                    report->parents_fixed,
                    static_cast<unsigned long long>(report->usage_corrected_bytes),
                    report->clean() ? "clean" : "repaired");
      }
    } else if (cmd == "backup") {
      VolumeId vid = 0;
      std::string file;
      in >> vid >> file;
      auto dump = campus.registry().BackupVolume(vid);
      if (!dump.ok()) {
        std::printf("%s\n", StatusName(dump.status()).data());
      } else {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(dump->data()),
                  static_cast<std::streamsize>(dump->size()));
        std::printf("dumped %zu bytes to %s\n", dump->size(), file.c_str());
      }
    } else if (cmd == "restore") {
      std::string file, name;
      ServerId server = 0;
      in >> file >> name >> server;
      std::ifstream is(file, std::ios::binary);
      if (!is) {
        std::printf("cannot read %s\n", file.c_str());
      } else {
        Bytes dump((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
        auto vid = campus.registry().RestoreVolume(dump, name, server);
        if (vid.ok()) {
          std::printf("restored as volume %u at server %u\n", *vid, server);
        } else {
          std::printf("%s\n", StatusName(vid.status()).data());
        }
      }
    } else if (cmd == "examine") {
      VolumeId vid = 0;
      in >> vid;
      vice::Volume* vol = campus.registry().FindVolume(vid);
      auto info = campus.registry().location().Find(vid);
      if (vol == nullptr || !info.has_value()) {
        std::printf("no such volume\n");
      } else {
        std::printf("volume %u '%s': %s, %s, custodian server %u\n", vid,
                    vol->name().c_str(), vol->read_only() ? "read-only" : "read-write",
                    vol->online() ? "online" : "OFFLINE", info->custodian);
        std::printf("  %zu vnodes, %llu bytes used, quota %llu, ro-clone %u\n",
                    vol->vnode_count(),
                    static_cast<unsigned long long>(vol->usage_bytes()),
                    static_cast<unsigned long long>(vol->quota_bytes()), info->ro_clone);
      }
    } else if (cmd == "listvldb") {
      for (const auto& [vid, info] : campus.registry().location().volumes) {
        std::printf("  vol %-4u custodian s%-2u %s", vid, info.custodian,
                    info.read_only ? "RO" : "RW");
        if (!info.replica_sites.empty()) {
          std::printf("  sites:");
          for (ServerId s : info.replica_sites) std::printf(" %u", s);
        }
        std::printf("\n");
      }
    } else if (cmd == "monitor") {
      auto report = monitor.Scan();
      pending = report.moves;
      std::printf("%zu recommendation(s)\n", pending.size());
      for (const auto& rec : pending) std::printf("  %s\n", rec.Describe().c_str());
    } else if (cmd == "apply") {
      for (const auto& rec : pending) {
        std::printf("%s: %s\n", rec.Describe().c_str(),
                    StatusName(monitor.Apply(rec)).data());
      }
      pending.clear();
    } else {
      std::printf("unknown command (try 'help')\n");
    }
    std::printf("vos> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
