// Kernel fidelity: quantifies the ordering error of the retired call-order
// timing model.
//
// The pre-kernel scheduler executed whole client operations synchronously in
// min-virtual-time order, so a resource could admit a demand whose arrival
// lay before work it had already accepted (the "straggler" approximation,
// bounded by one operation's duration). The event kernel admits demands in
// exact arrival order. This bench runs the identical synthetic day under
// both modes at N = 4/8/16/32 clients on one prototype server and reports
// the divergence: day completion time, average/peak CPU utilization, and the
// per-5-minute-window utilization delta. The deltas are the error every
// pre-kernel bench number carried.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct ArmResult {
  double day_s = 0;
  double cpu_avg = 0;
  double cpu_peak = 0;
  std::vector<double> windows;
};

ArmResult RunArm(uint32_t clients, sim::SchedulerMode mode) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Prototype(1, clients);
  config.user_day.operations = 400;
  // Short think times keep several clients in flight at once — exactly the
  // regime where service order matters.
  config.user_day.mean_think = Seconds(8);
  config.user_day.burst_probability = 0.05;
  config.user_day.burst_length = 20;
  config.user_day.burst_think = Millis(500);
  config.scheduler_mode = mode;
  UserDayLab lab(config);
  const SimTime end = lab.Run();

  ArmResult r;
  r.day_s = ToSeconds(end);
  r.cpu_avg = lab.ServerCpuUtilization(end);
  r.cpu_peak = lab.PeakServerCpuUtilization();
  r.windows = lab.campus().server(0).endpoint().cpu().WindowUtilization();
  return r;
}

struct Row {
  uint32_t clients = 0;
  ArmResult call_order;
  ArmResult arrival_order;
  double window_max_abs_delta = 0;
  double window_mean_abs_delta = 0;
  long peak_rss_kb = 0;
};

Row RunRow(uint32_t clients) {
  Row row;
  row.clients = clients;
  row.call_order = RunArm(clients, sim::SchedulerMode::kConservative);
  row.arrival_order = RunArm(clients, sim::SchedulerMode::kEventDriven);
  row.peak_rss_kb = ReadPeakRssKb();

  const size_t n = std::max(row.call_order.windows.size(),
                            row.arrival_order.windows.size());
  double sum = 0;
  for (size_t w = 0; w < n; ++w) {
    const double a = w < row.call_order.windows.size() ? row.call_order.windows[w] : 0.0;
    const double b =
        w < row.arrival_order.windows.size() ? row.arrival_order.windows[w] : 0.0;
    const double d = std::fabs(a - b);
    row.window_max_abs_delta = std::max(row.window_max_abs_delta, d);
    sum += d;
  }
  row.window_mean_abs_delta = n > 0 ? sum / static_cast<double>(n) : 0.0;
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernel_fidelity\",\n  \"window_seconds\": 300,\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"clients\": %u, \"call_order_day_s\": %.1f, "
        "\"arrival_order_day_s\": %.1f, \"day_delta_s\": %.1f, "
        "\"call_order_cpu_avg\": %.4f, \"arrival_order_cpu_avg\": %.4f, "
        "\"call_order_cpu_peak\": %.4f, \"arrival_order_cpu_peak\": %.4f, "
        "\"window_max_abs_delta\": %.4f, \"window_mean_abs_delta\": %.4f, "
        "\"peak_rss_kb\": %ld}%s\n",
        r.clients, r.call_order.day_s, r.arrival_order.day_s,
        r.call_order.day_s - r.arrival_order.day_s, r.call_order.cpu_avg,
        r.arrival_order.cpu_avg, r.call_order.cpu_peak, r.arrival_order.cpu_peak,
        r.window_max_abs_delta, r.window_mean_abs_delta, r.peak_rss_kb,
        i + 1 != rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main() {
  PrintTitle("kernel fidelity: call-order vs arrival-order service (bench_kernel_fidelity)",
             "quantifies the ordering error removed by the event kernel");
  std::printf("workload: N clients x 400 ops on 1 prototype server, identical seeds\n\n");
  std::printf("%8s %12s %12s %9s %10s %10s %10s %10s\n", "clients", "day(call)",
              "day(arrive)", "delta", "peak(call)", "peak(arr)", "win max d",
              "win mean d");

  std::vector<Row> rows;
  for (uint32_t n : {4u, 8u, 16u, 32u}) {
    Row row = RunRow(n);
    std::printf("%8u %11.1fs %11.1fs %8.1fs %9.1f%% %9.1f%% %10.4f %10.4f\n",
                row.clients, row.call_order.day_s, row.arrival_order.day_s,
                row.call_order.day_s - row.arrival_order.day_s,
                100.0 * row.call_order.cpu_peak, 100.0 * row.arrival_order.cpu_peak,
                row.window_max_abs_delta, row.window_mean_abs_delta);
    rows.push_back(std::move(row));
  }

  WriteJson("BENCH_kernel.json", rows);

  std::printf("\nshape check: total work is identical (same ops, same demands), so the\n"
              "divergence above is purely service-order error. It grows with client\n"
              "count — more concurrent demands in flight means more chances for the\n"
              "call-order model to admit a logically-later demand first.\n");
  return 0;
}
