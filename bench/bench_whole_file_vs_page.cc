// A2 — Whole-file transfer and caching vs remote-open page access.
//
// Paper (Section 3.2): "The caching of entire files, rather than individual
// pages, is fundamental to our design... custodians are contacted only on
// file opens and closes... total network protocol overhead in transmitting
// a file is lower when it is sent en masse"; Section 2.2 bounds the design
// to files "up to a few megabytes".
//
// Reproduction: one client, one server, same cost model. For each file size
// we compare (a) the itcfs whole-file path (cold fetch, then warm re-reads)
// with (b) the Locus/Newcastle-style remote-open baseline reading the whole
// file page by page, and (c) the baseline touching a single page of the
// file — the sparse-access case where page granularity legitimately wins.

#include "bench/harness.h"

#include "src/common/logging.h"
#include "src/baseline/remote_open.h"
#include "src/common/logging.h"
#include "src/workload/source_tree.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct Timings {
  double itcfs_cold_s;
  double itcfs_warm_s;
  double baseline_full_s;
  double baseline_page_s;
};

Timings MeasureSize(uint64_t size) {
  Timings t{};
  const Bytes payload = workload::SynthesizeContents(size, size);

  // --- itcfs: whole-file caching ------------------------------------------------
  {
    campus::Campus campus(campus::CampusConfig::Revised(1, 1));
    ITC_CHECK(campus.SetupRootVolume().ok());
    auto home = campus.AddUserWithHome("u", "pw", 0);
    ITC_CHECK(campus.PopulateDirect(home->volume, "/big", payload) == Status::kOk);
    auto& ws = campus.workstation(0);
    ITC_CHECK(ws.LoginWithPassword(home->user, "pw") == Status::kOk);

    SimTime t0 = ws.clock().now();
    ITC_CHECK(ws.ReadWholeFile("/vice/usr/u/big").ok());
    t.itcfs_cold_s = ToSeconds(ws.clock().now() - t0);

    t0 = ws.clock().now();
    ITC_CHECK(ws.ReadWholeFile("/vice/usr/u/big").ok());
    t.itcfs_warm_s = ToSeconds(ws.clock().now() - t0);
  }

  // --- baseline: remote-open, page at a time -------------------------------------
  {
    const net::Topology topo(net::TopologyConfig{1, 1, 1});
    const sim::CostModel cost = sim::CostModel::Default1985();
    net::Network network(topo, cost);
    const auto key = crypto::DeriveKeyFromPassword("pw", "realm");
    baseline::RemoteOpenServer server(
        topo.ServerNode(0, 0), &network, cost, rpc::RpcConfig{},
        [&key](UserId) -> std::optional<crypto::Key> { return key; }, 7);
    ITC_CHECK(server.storage().WriteFile("/big", payload) == Status::kOk);

    sim::Clock clock;
    baseline::RemoteOpenClient client(topo.WorkstationNode(0, 0), &clock, &server,
                                      &network, cost);
    ITC_CHECK(client.Connect(1, key, 3) == Status::kOk);

    SimTime t0 = clock.now();
    ITC_CHECK(client.ReadWholeFile("/big").ok());
    t.baseline_full_s = ToSeconds(clock.now() - t0);

    auto handle = client.Open("/big", false);
    t0 = clock.now();
    ITC_CHECK(client.Read(*handle, size / 2, 128).ok());
    t.baseline_page_s = ToSeconds(clock.now() - t0);
    ITC_CHECK(client.Close(*handle) == Status::kOk);
  }
  return t;
}

}  // namespace

int main() {
  PrintTitle("A2: whole-file transfer vs page-level remote access "
             "(bench_whole_file_vs_page)",
             "whole-file caching wins except for sparse access to very large "
             "files (design bound: files up to a few megabytes)");
  std::printf("one client, unloaded server; times in seconds of virtual time\n\n");
  std::printf("%10s %12s %12s %14s %16s\n", "file size", "itcfs cold", "itcfs warm",
              "baseline full", "baseline 1 page");

  for (uint64_t kb : {4, 16, 64, 256, 1024, 4096}) {
    const Timings t = MeasureSize(kb * 1024);
    std::printf("%7llu KB %11.3f %12.4f %14.3f %16.4f\n",
                static_cast<unsigned long long>(kb), t.itcfs_cold_s, t.itcfs_warm_s,
                t.baseline_full_s, t.baseline_page_s);
  }

  std::printf("\nshape check: beyond the smallest files the cold whole-file fetch\n"
              "beats page-by-page full reads and the gap widens with size (en-masse\n"
              "transfer amortizes per-call overhead; the itcfs cold column also\n"
              "pays one-time directory fetches for name resolution). Warm re-reads\n"
              "are near-free, which no uncached baseline can match. Only touching a\n"
              "single page of a multi-megabyte file favours the baseline — the\n"
              "sparse-database case the paper explicitly leaves to future designs.\n");
  return 0;
}
