// A2 — Whole-file transfer and caching vs remote-open page access.
//
// Paper (Section 3.2): "The caching of entire files, rather than individual
// pages, is fundamental to our design... custodians are contacted only on
// file opens and closes... total network protocol overhead in transmitting
// a file is lower when it is sent en masse"; Section 2.2 bounds the design
// to files "up to a few megabytes".
//
// Reproduction: one client, one server, same cost model, and — since the
// VFS refactor — literally the same workload code for both arms: the file
// is read through vfs::Switch::ReadWholeFile and the only difference is
// which Mount backs the path (Venus whole-file caching vs the
// Locus/Newcastle-style remote-open mount). We compare (a) the itcfs cold
// fetch and warm re-read, (b) the baseline reading the whole file page by
// page, and (c) the baseline touching a single page — the sparse-access
// case where page granularity legitimately wins.

#include "bench/harness.h"

#include "src/baseline/remote_open.h"
#include "src/common/content.h"
#include "src/common/logging.h"
#include "src/virtue/vfs/remote_mount.h"
#include "src/virtue/vfs/switch.h"
#include "src/workload/source_tree.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct Timings {
  double itcfs_cold_s;
  double itcfs_warm_s;
  double baseline_full_s;
  double baseline_page_s;
};

// The A2 workload, mount-agnostic: whole-file read through the switch.
double TimedWholeRead(virtue::vfs::Switch& sw, const sim::Clock& clock,
                      const std::string& path) {
  const SimTime t0 = clock.now();
  ITC_CHECK(sw.ReadWholeFile(path).ok());
  return ToSeconds(clock.now() - t0);
}

// Sparse access: one small read in the middle of the file (open/close
// excluded, as in the original comparator).
double TimedPageRead(virtue::vfs::Switch& sw, const sim::Clock& clock,
                     const std::string& path, uint64_t offset) {
  auto fd = sw.Open(path, virtue::vfs::kRead);
  ITC_CHECK(fd.ok());
  ITC_CHECK(sw.Seek(*fd, offset).ok());
  const SimTime t0 = clock.now();
  ITC_CHECK(sw.Read(*fd, 128).ok());
  const double dt = ToSeconds(clock.now() - t0);
  ITC_CHECK(sw.Close(*fd) == Status::kOk);
  return dt;
}

Timings MeasureSize(uint64_t size) {
  Timings t{};
  const content::Ref contents = content::Ref::ForSeed(size, size);

  // --- itcfs mount: whole-file caching -----------------------------------------
  {
    campus::Campus campus(campus::CampusConfig::Revised(1, 1));
    ITC_CHECK(campus.SetupRootVolume().ok());
    auto home = campus.AddUserWithHome("u", "pw", 0);
    ITC_CHECK(campus.PopulateDirect(home->volume, "/big", contents) == Status::kOk);
    auto& ws = campus.workstation(0);
    ITC_CHECK(ws.LoginWithPassword(home->user, "pw") == Status::kOk);

    t.itcfs_cold_s = TimedWholeRead(ws.vfs(), ws.clock(), "/vice/usr/u/big");
    t.itcfs_warm_s = TimedWholeRead(ws.vfs(), ws.clock(), "/vice/usr/u/big");
  }

  // --- remote-open mount: page at a time ---------------------------------------
  {
    const net::Topology topo(net::TopologyConfig{1, 1, 1});
    const sim::CostModel cost = sim::CostModel::Default1985();
    net::Network network(topo, cost);
    const auto key = crypto::DeriveKeyFromPassword("pw", "realm");
    baseline::RemoteOpenServer server(
        topo.ServerNode(0, 0), &network, cost, rpc::RpcConfig{},
        [&key](UserId) -> std::optional<crypto::Key> { return key; }, 7);
    // Transient write payload; the unixfs at-rest copy re-canonicalizes.
    ITC_CHECK(server.storage().WriteFile("/big", contents.Materialize()) == Status::kOk);

    sim::Clock clock;
    virtue::vfs::Switch sw;
    auto mount = std::make_unique<virtue::vfs::RemoteMount>(topo.WorkstationNode(0, 0),
                                                            &clock, &server, &network, cost);
    ITC_CHECK(mount->Connect(1, key, 3) == Status::kOk);
    ITC_CHECK(sw.AddMount("/remote", std::move(mount)) == Status::kOk);

    t.baseline_full_s = TimedWholeRead(sw, clock, "/remote/big");
    t.baseline_page_s = TimedPageRead(sw, clock, "/remote/big", size / 2);
  }
  return t;
}

}  // namespace

int main() {
  PrintTitle("A2: whole-file transfer vs page-level remote access "
             "(bench_whole_file_vs_page)",
             "whole-file caching wins except for sparse access to very large "
             "files (design bound: files up to a few megabytes)");
  std::printf("one client, unloaded server; times in seconds of virtual time\n");
  std::printf("same workload, different mount: both arms call "
              "vfs::Switch::ReadWholeFile\n\n");
  std::printf("%10s %12s %12s %14s %16s\n", "file size", "itcfs cold", "itcfs warm",
              "baseline full", "baseline 1 page");

  for (uint64_t kb : {4, 16, 64, 256, 1024, 4096}) {
    const Timings t = MeasureSize(kb * 1024);
    std::printf("%7llu KB %11.3f %12.4f %14.3f %16.4f\n",
                static_cast<unsigned long long>(kb), t.itcfs_cold_s, t.itcfs_warm_s,
                t.baseline_full_s, t.baseline_page_s);
  }

  std::printf("\nshape check: beyond the smallest files the cold whole-file fetch\n"
              "beats page-by-page full reads and the gap widens with size (en-masse\n"
              "transfer amortizes per-call overhead; the itcfs cold column also\n"
              "pays one-time directory fetches for name resolution). Warm re-reads\n"
              "are near-free, which no uncached baseline can match. Only touching a\n"
              "single page of a multi-megabyte file favours the baseline — the\n"
              "sparse-database case the paper explicitly leaves to future designs.\n");
  return 0;
}
