// A9 — Monitoring and custodian reassignment (Section 3.6 future work,
// implemented).
//
// Paper: monitoring tools should "recognize long-term changes in user access
// patterns and help reassign users to cluster servers so as to balance
// server loads and reduce cross-cluster traffic"; Section 3.1: "we may
// install mechanisms in Vice to monitor long-term access file patterns and
// recommend changes... a human operator will initiate the actual
// reassignment."
//
// Reproduction: half the users of cluster 1 have homes custodian-ed in
// cluster 0 (they "moved dormitories"). A working day runs; the Monitor
// scans the access counters and recommends moves; the operator applies
// them; a second day runs. We compare cross-cluster traffic and latency.

#include "bench/harness.h"

#include "src/common/logging.h"
#include "src/vice/monitor.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct DayResult {
  uint64_t cross_cluster_messages;
  double cross_cluster_mb;
  double open_ms;
};

DayResult RunDay(campus::Campus& campus,
                 std::vector<std::unique_ptr<workload::SyntheticUser>>& users) {
  // Fresh counters AND fresh resource queues: server/LAN ready-times from
  // the previous day would otherwise make early-starting clients queue
  // behind phantom work.
  campus.ResetAllStats();
  for (uint32_t w = 0; w < campus.workstation_count(); ++w) {
    campus.workstation(w).venus().FlushCache();
  }
  sim::Scheduler sched;
  for (auto& u : users) sched.Add(u.get());
  sched.RunAll();

  DayResult r{};
  r.cross_cluster_messages = campus.network().stats().cross_cluster_messages;
  r.cross_cluster_mb =
      static_cast<double>(campus.network().stats().cross_cluster_bytes) / (1 << 20);
  venus::VenusStats total;
  for (uint32_t w = 0; w < campus.workstation_count(); ++w) {
    const auto& s = campus.workstation(w).venus().stats();
    total.opens += s.opens;
    total.open_time_total += s.open_time_total;
  }
  r.open_ms = total.MeanOpenLatency() / 1000.0;
  return r;
}

}  // namespace

int main() {
  PrintTitle("A9: monitoring-driven custodian reassignment (bench_monitoring)",
             "monitor access patterns, recommend volume moves, reduce "
             "cross-cluster traffic (Sections 3.1/3.6)");

  campus::Campus campus(campus::CampusConfig::Revised(2, 6));
  ITC_CHECK(campus.SetupRootVolume().ok());

  // Users 0-5 sit in cluster 0, users 6-11 in cluster 1. The cluster-1 users
  // all have their volumes custodian-ed WRONG (server 0): they moved.
  std::vector<std::unique_ptr<workload::SyntheticUser>> users;
  workload::UserDayConfig day;
  day.operations = 500;
  day.mean_think = Seconds(8);
  day.p_read_system = 0;  // no system volume in this lab; own files only
  day.p_read_own = 0.50;
  day.p_stat = 0.30;
  for (uint32_t w = 0; w < campus.workstation_count(); ++w) {
    const std::string name = "u" + std::to_string(w);
    auto home = campus.AddUserWithHome(name, "pw", /*custodian=*/0);  // all at server 0
    ITC_CHECK(home.ok());
    ITC_CHECK(workload::PopulateUserFiles(campus, home->volume, day.own_files, w) ==
              Status::kOk);
    ITC_CHECK(campus.workstation(w).LoginWithPassword(home->user, "pw") == Status::kOk);
    users.push_back(std::make_unique<workload::SyntheticUser>(
        &campus.workstation(w), "/vice" + home->vice_path, "/bin", day, 7000 + w));
  }

  PrintSection("day 1: all volumes custodian-ed at server 0");
  const DayResult before = RunDay(campus, users);
  std::printf("cross-cluster: %llu msgs, %.1f MB; mean open %.0f ms\n",
              static_cast<unsigned long long>(before.cross_cluster_messages),
              before.cross_cluster_mb, before.open_ms);

  PrintSection("operator runs the monitor");
  vice::Monitor monitor(&campus.registry(), /*dominance=*/0.6, /*min_accesses=*/50);
  auto report = monitor.Scan();
  std::printf("%zu recommendation(s):\n", report.moves.size());
  for (const auto& rec : report.moves) {
    std::printf("  %s\n", rec.Describe().c_str());
    ITC_CHECK(monitor.Apply(rec) == Status::kOk);
  }

  // Fresh user scripts for day 2 (same statistical day).
  std::vector<std::unique_ptr<workload::SyntheticUser>> day2;
  for (uint32_t w = 0; w < campus.workstation_count(); ++w) {
    day2.push_back(std::make_unique<workload::SyntheticUser>(
        &campus.workstation(w), "/vice/usr/u" + std::to_string(w), "/bin", day,
        9000 + w));
  }
  PrintSection("day 2: after applying the recommendations");
  const DayResult after = RunDay(campus, day2);
  std::printf("cross-cluster: %llu msgs, %.1f MB; mean open %.0f ms\n",
              static_cast<unsigned long long>(after.cross_cluster_messages),
              after.cross_cluster_mb, after.open_ms);

  std::printf("\nshape check: the monitor identifies exactly the mis-homed volumes\n"
              "(cluster-1 users custodian-ed at server 0); applying the moves cuts\n"
              "cross-cluster traffic and open latency — 'localize if possible'.\n");
  return 0;
}
