// A1 — Cache validation: check-on-open vs callbacks vs leases.
//
// Paper (Section 3.2): "Our current design uses check-on-open to simplify
// implementation and reduce server state. However, experience with a
// prototype has convinced us that the cost of frequent cache validation is
// high enough to warrant the additional complexity of an invalidate-on-
// modification approach in our next implementation." Section 5.2 measured
// the cost: validation was 65% of all server calls.
//
// This bench runs the ablation three ways — the paper's two schemes plus
// Gray & Cheriton leases (time-bounded promises) — on an identical workload,
// then replays two availability scenarios the steady-state numbers hide:
//
//   * a healed link partition: how stale can a partitioned cache get, and
//     does the staleness survive the heal? (callbacks: yes, forever;
//     leases: bounded by the term; check-on-open: never stale, just down)
//   * a server restart storm: every client reconnects at once. Callbacks
//     must rebuild trust with epoch probes and a revalidation burst;
//     leases rebuild nothing — the server just refuses grants for one
//     term, and grants ride the validations clients make anyway.
//
// Output: BENCH_validation.json (open latency, validation RPCs per
// interaction, staleness-window distribution, restart recovery).

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/logging.h"

namespace {

using namespace itc;
using namespace itc::bench;

using Scheme = venus::VenusConfig::Validation;

const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kCheckOnOpen: return "check-on-open";
    case Scheme::kCallbacks: return "callbacks";
    case Scheme::kLeases: return "leases";
  }
  return "?";
}

uint64_t OpCalls(const rpc::CallStats& stats, const std::string& name) {
  for (const auto& [opcode, op] : stats.per_op()) {
    if (op.name == name) return op.calls;
  }
  return 0;
}

// ---------------------------------------------------------------- steady state

struct SteadyResult {
  uint64_t total_calls = 0;
  uint64_t validations = 0;       // Validate / GrantLease round trips
  uint64_t renew_calls = 0;       // batched RenewLeases RPCs
  double validations_per_open = 0;
  double cpu_util = 0;
  double open_ms = 0;
  uint64_t promises_or_leases = 0;  // server-side trust state at day's end
};

SteadyResult RunSteadyArm(Scheme scheme) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(1, 16);
  config.campus.UseValidation(scheme);
  config.user_day.operations = 1200;
  // Some genuine sharing so invalidations actually happen: users read each
  // other's system binaries by default; raise the edit rate a little.
  config.user_day.p_write_own = 0.05;
  UserDayLab lab(config);
  const SimTime end = lab.Run();

  const auto vs = lab.TotalVenusStats();
  SteadyResult r;
  r.total_calls = lab.campus().TotalCalls();
  r.validations = vs.validations;
  r.renew_calls = vs.lease_renew_calls;
  if (vs.opens > 0) {
    r.validations_per_open =
        static_cast<double>(vs.validations + vs.lease_renew_calls) /
        static_cast<double>(vs.opens);
  }
  r.cpu_util = lab.ServerCpuUtilization(end);
  r.open_ms = vs.MeanOpenLatency() / 1000.0;
  auto& server = lab.campus().server(0);
  r.promises_or_leases = scheme == Scheme::kLeases
                             ? server.leases().lease_count(end)
                             : server.callbacks().promise_count();
  return r;
}

// ------------------------------------------------------------ healed partition

struct PartitionResult {
  double staleness_s = 0;        // last stale serve - write time (0: never)
  bool stale_after_heal = false; // still serving old data once the link is back
  double unavailable_s = 0;      // probe-seconds answered with an error
};

// One deterministic run: a reader caches a file, drops off the network for
// `partition_s` seconds, the writer updates the file `write_offset_s` in.
// Probes every second measure what the reader serves until 40 s past heal.
PartitionResult RunPartitionArm(Scheme scheme, int64_t partition_s,
                                int64_t write_offset_s) {
  campus::CampusConfig config = campus::CampusConfig::Revised(2, 2);
  config.UseValidation(scheme);
  campus::Campus campus(config);
  ITC_CHECK(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("a", "pw", /*custodian=*/0);
  ITC_CHECK(home.ok());
  auto& writer = campus.workstation(0);  // custodian's own cluster
  auto& reader = campus.workstation(2);  // the other cluster
  ITC_CHECK(writer.LoginWithPassword(home->user, "pw") == Status::kOk);
  ITC_CHECK(reader.LoginWithPassword(home->user, "pw") == Status::kOk);
  const std::string file = "/vice/usr/a/shared";
  ITC_CHECK(writer.WriteWholeFile(file, ToBytes("v1")) == Status::kOk);
  ITC_CHECK(reader.ReadWholeFile(file).ok());

  const SimTime p1 =
      std::max(writer.clock().now(), reader.clock().now()) + Seconds(1);
  const SimTime p2 = p1 + Seconds(partition_s);
  campus.PartitionWorkstation(2, p1, p2);

  writer.clock().AdvanceTo(p1 + Seconds(write_offset_s));
  const SimTime write_at = writer.clock().now();
  ITC_CHECK(writer.WriteWholeFile(file, ToBytes("v2")) == Status::kOk);

  PartitionResult r;
  SimTime last_stale = 0;
  for (SimTime t = write_at + Seconds(1); t <= p2 + Seconds(40); t += Seconds(1)) {
    if (t <= reader.clock().now()) continue;  // a slow probe already passed t
    reader.clock().AdvanceTo(t);
    auto got = reader.ReadWholeFile(file);
    if (!got.ok()) {
      r.unavailable_s += 1;
      continue;
    }
    if (ToString(*got) == "v1") {
      last_stale = reader.clock().now();
      if (t > p2) r.stale_after_heal = true;
    }
  }
  if (last_stale > write_at) {
    r.staleness_s = static_cast<double>(last_stale - write_at) / Seconds(1);
  }
  return r;
}

// -------------------------------------------------------------- restart storm

struct RestartResult {
  double recovery_s = 0;           // restart -> last probe round needing traffic
  bool never_quiet = false;        // scheme never regains trusted-cache service
  uint64_t probe_epoch_calls = 0;  // dedicated restart-detection RPCs
  uint64_t revalidations = 0;      // Validate + GrantLease calls in the window
  uint64_t renew_calls = 0;
  double lease_embargo_s = 0;      // server-side grant refusal window
  double embargo_write_delay_s = 0;  // extra delay of a write at restart+1s
  double server_recovery_s = 0;    // salvage/log replay time at the server
};

constexpr int kRestartFiles = 6;

// Shared scenario for the restart arms: every workstation caches the files,
// then the custodian crashes and restarts at the latest client clock.
struct RestartRig {
  std::unique_ptr<campus::Campus> campus;
  SimTime restart_at = 0;
  vice::recovery::RecoveryReport report;
};

RestartRig MakeRestartRig(Scheme scheme) {
  campus::CampusConfig config = campus::CampusConfig::Revised(2, 2);
  config.UseValidation(scheme);
  RestartRig rig;
  rig.campus = std::make_unique<campus::Campus>(config);
  campus::Campus& campus = *rig.campus;
  ITC_CHECK(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("a", "pw", /*custodian=*/0);
  ITC_CHECK(home.ok());
  for (size_t w = 0; w < 4; ++w) {
    ITC_CHECK(campus.workstation(w).LoginWithPassword(home->user, "pw") ==
              Status::kOk);
  }
  auto& seeder = campus.workstation(0);
  for (int f = 0; f < kRestartFiles; ++f) {
    ITC_CHECK(seeder.WriteWholeFile("/vice/usr/a/f" + std::to_string(f),
                                    ToBytes("x")) == Status::kOk);
  }
  for (size_t w = 1; w < 4; ++w) {
    for (int f = 0; f < kRestartFiles; ++f) {
      ITC_CHECK(campus.workstation(w)
                    .ReadWholeFile("/vice/usr/a/f" + std::to_string(f))
                    .ok());
    }
  }

  for (size_t w = 0; w < 4; ++w) {
    rig.restart_at = std::max(rig.restart_at, campus.workstation(w).clock().now());
  }
  campus.CrashServer(0);
  rig.report = campus.RestartServer(0, rig.restart_at);
  ITC_CHECK(rig.report.clean());
  return rig;
}

// All clients notice the bounced server at once (severed connections) and
// hammer probe opens. "Recovered" = a probe round served entirely from
// trusted cache (promise or live lease) with zero validation traffic;
// recovery_s is the last round that still needed the server. Check-on-open
// never gets there by construction.
//
// The embargo-write measurement runs in a SEPARATE rig: virtual time is
// global, so a write that waits out the lease embargo would drag every
// workstation's clock past it and hide the storm from the probe loop.
RestartResult RunRestartArm(Scheme scheme) {
  constexpr int kFiles = kRestartFiles;
  constexpr int64_t kWindowS = 90;

  RestartResult r;
  {
    RestartRig rig = MakeRestartRig(scheme);
    campus::Campus& campus = *rig.campus;
    // One client writes right after the restart: under leases its completion
    // is pushed past the embargo; under the other schemes it lands at once.
    auto& writer = campus.workstation(1);
    if (writer.clock().now() < rig.restart_at + Seconds(1)) {
      writer.clock().AdvanceTo(rig.restart_at + Seconds(1));
    }
    const SimTime write_started = writer.clock().now();
    ITC_CHECK(writer.WriteWholeFile("/vice/usr/a/f0", ToBytes("y")) ==
              Status::kOk);
    r.embargo_write_delay_s =
        static_cast<double>(writer.clock().now() - write_started) / Seconds(1);
  }

  RestartRig rig = MakeRestartRig(scheme);
  campus::Campus& campus = *rig.campus;
  const SimTime restart_at = rig.restart_at;
  r.server_recovery_s = static_cast<double>(rig.report.recovery_time) / Seconds(1);
  r.lease_embargo_s =
      scheme == Scheme::kLeases
          ? static_cast<double>(campus.server(0).leases().suspended_until() -
                                restart_at) /
                // itcfs-lint: allow(no-raw-lease-term) -- Seconds(1) converts to display units, it is not a lease duration
                Seconds(1)
          : 0.0;

  const rpc::CallStats before = campus.TotalCallStats();

  // Every client notices the bounced server on its next contact — model the
  // simultaneous reconnect with a cheap non-mutating call each. (A mutation
  // would be delayed past a lease embargo and hide the storm.)
  for (size_t w = 1; w < 4; ++w) {
    (void)campus.workstation(w).venus().GetAcl("/usr/a");
  }

  // The storm: all clients probe their cached files every 2 seconds. A round
  // counts as recovery traffic when it needed validation-class calls or
  // refetches; batched lease renewals are excluded — they are the scheme's
  // steady-state amortized maintenance and happen with or without a restart.
  const auto recovery_calls = [&campus]() {
    const rpc::CallStats cs = campus.TotalCallStats();
    return OpCalls(cs, "Validate") + OpCalls(cs, "GrantLease") +
           OpCalls(cs, "ProbeEpoch") + OpCalls(cs, "Fetch") +
           OpCalls(cs, "FetchStatus");
  };
  SimTime last_busy = restart_at;
  int quiet_rounds = 0;
  for (SimTime t = restart_at + Seconds(2); t <= restart_at + Seconds(kWindowS);
       t += Seconds(2)) {
    const uint64_t calls_before = recovery_calls();
    for (size_t w = 1; w < 4; ++w) {
      auto& ws = campus.workstation(w);
      if (ws.clock().now() < t) ws.clock().AdvanceTo(t);
      for (int f = 1; f < kFiles; ++f) {
        (void)ws.ReadWholeFile("/vice/usr/a/f" + std::to_string(f));
      }
    }
    if (recovery_calls() == calls_before) {
      quiet_rounds += 1;
    } else {
      last_busy = t;
      quiet_rounds = 0;
    }
  }
  r.never_quiet = quiet_rounds == 0;
  r.recovery_s = r.never_quiet
                     ? static_cast<double>(kWindowS)
                     : static_cast<double>(last_busy - restart_at) / Seconds(1);

  const rpc::CallStats after = campus.TotalCallStats();
  r.probe_epoch_calls = OpCalls(after, "ProbeEpoch") - OpCalls(before, "ProbeEpoch");
  r.revalidations = (OpCalls(after, "Validate") - OpCalls(before, "Validate")) +
                    (OpCalls(after, "GrantLease") - OpCalls(before, "GrantLease"));
  r.renew_calls = OpCalls(after, "RenewLeases") - OpCalls(before, "RenewLeases");
  return r;
}

// ----------------------------------------------------------------------- JSON

void WriteJson(const std::vector<Scheme>& schemes,
               const std::vector<SteadyResult>& steady,
               const std::vector<std::vector<PartitionResult>>& partition,
               const std::vector<RestartResult>& restart) {
  std::FILE* f = std::fopen("BENCH_validation.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_validation.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"validation_schemes\",\n  \"schemes\": [\n");
  for (size_t i = 0; i < schemes.size(); ++i) {
    const SteadyResult& s = steady[i];
    const RestartResult& rr = restart[i];
    std::fprintf(f, "    {\"scheme\": \"%s\", \"peak_rss_kb\": %ld,\n",
                 SchemeName(schemes[i]), ReadPeakRssKb());
    std::fprintf(
        f,
        "     \"steady\": {\"server_calls\": %llu, \"validation_rpcs\": %llu, "
        "\"renew_calls\": %llu, \"validations_per_open\": %.4f, "
        "\"mean_open_ms\": %.2f, \"server_cpu\": %.4f, "
        "\"promises_or_leases_held\": %llu},\n",
        static_cast<unsigned long long>(s.total_calls),
        static_cast<unsigned long long>(s.validations),
        static_cast<unsigned long long>(s.renew_calls), s.validations_per_open,
        s.open_ms, s.cpu_util,
        static_cast<unsigned long long>(s.promises_or_leases));
    bool stale_after_heal = false;
    double unavailable_s = 0;
    std::fprintf(f, "     \"partition\": {\"staleness_window_s\": [");
    for (size_t k = 0; k < partition[i].size(); ++k) {
      std::fprintf(f, "%s%.1f", k ? ", " : "", partition[i][k].staleness_s);
      stale_after_heal = stale_after_heal || partition[i][k].stale_after_heal;
      unavailable_s = std::max(unavailable_s, partition[i][k].unavailable_s);
    }
    std::fprintf(f,
                 "], \"stale_after_heal\": %s, \"max_unavailable_s\": %.1f},\n",
                 stale_after_heal ? "true" : "false", unavailable_s);
    std::fprintf(
        f,
        "     \"restart\": {\"recovery_s\": %.1f, \"never_quiet\": %s, "
        "\"probe_epoch_calls\": %llu, \"revalidations\": %llu, "
        "\"renew_calls\": %llu, \"lease_embargo_s\": %.1f, "
        "\"embargo_write_delay_s\": %.1f, \"server_recovery_s\": %.2f}}%s\n",
        rr.recovery_s, rr.never_quiet ? "true" : "false",
        static_cast<unsigned long long>(rr.probe_epoch_calls),
        static_cast<unsigned long long>(rr.revalidations),
        static_cast<unsigned long long>(rr.renew_calls), rr.lease_embargo_s,
        rr.embargo_write_delay_s, rr.server_recovery_s,
        i + 1 != schemes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_validation.json\n");
}

}  // namespace

int main() {
  PrintTitle("A1: validation scheme ablation (bench_validation_schemes)",
             "check-on-open made validation 65% of server calls; the revised "
             "system replaces it with promises — open-ended or leased");
  std::printf("workload: 16 workstations x 1200 ops, identical but for the scheme\n\n");

  const std::vector<Scheme> schemes = {Scheme::kCheckOnOpen, Scheme::kCallbacks,
                                       Scheme::kLeases};
  std::vector<SteadyResult> steady;
  for (Scheme s : schemes) steady.push_back(RunSteadyArm(s));

  std::printf("%-28s %16s %16s %16s\n", "metric", "check-on-open", "callbacks",
              "leases");
  auto row_u = [&](const char* name, auto get) {
    std::printf("%-28s %16llu %16llu %16llu\n", name,
                static_cast<unsigned long long>(get(steady[0])),
                static_cast<unsigned long long>(get(steady[1])),
                static_cast<unsigned long long>(get(steady[2])));
  };
  row_u("server calls (total)", [](const SteadyResult& r) { return r.total_calls; });
  row_u("validation RPCs", [](const SteadyResult& r) { return r.validations; });
  row_u("lease renewal RPCs", [](const SteadyResult& r) { return r.renew_calls; });
  std::printf("%-28s %16.3f %16.3f %16.3f\n", "validations / open",
              steady[0].validations_per_open, steady[1].validations_per_open,
              steady[2].validations_per_open);
  std::printf("%-28s %15.1f%% %15.1f%% %15.1f%%\n", "server CPU utilization",
              100.0 * steady[0].cpu_util, 100.0 * steady[1].cpu_util,
              100.0 * steady[2].cpu_util);
  std::printf("%-28s %13.0f ms %13.0f ms %13.0f ms\n", "mean open latency",
              steady[0].open_ms, steady[1].open_ms, steady[2].open_ms);
  row_u("promises / leases held",
        [](const SteadyResult& r) { return r.promises_or_leases; });

  PrintSection("healed partition (120 s, write lands mid-partition)");
  std::vector<std::vector<PartitionResult>> partition(schemes.size());
  const int64_t offsets[] = {1, 5, 11, 23, 47};
  for (size_t i = 0; i < schemes.size(); ++i) {
    for (int64_t off : offsets) {
      partition[i].push_back(RunPartitionArm(schemes[i], /*partition_s=*/120, off));
    }
    std::printf("%-14s staleness_s = [", SchemeName(schemes[i]));
    bool heal = false;
    for (size_t k = 0; k < partition[i].size(); ++k) {
      std::printf("%s%.1f", k ? ", " : "", partition[i][k].staleness_s);
      heal = heal || partition[i][k].stale_after_heal;
    }
    std::printf("]  stale_after_heal=%s\n", heal ? "YES" : "no");
  }

  PrintSection("restart storm (3 clients x 6 cached files, probes every 2 s)");
  std::vector<RestartResult> restart;
  for (Scheme s : schemes) {
    restart.push_back(RunRestartArm(s));
    const RestartResult& r = restart.back();
    std::printf(
        "%-14s recovery=%5.1fs%s  epoch probes=%2llu  revalidations=%3llu  "
        "write delay during embargo=%4.1fs\n",
        SchemeName(s), r.recovery_s, r.never_quiet ? " (never trusted)" : "",
        static_cast<unsigned long long>(r.probe_epoch_calls),
        static_cast<unsigned long long>(r.revalidations),
        r.embargo_write_delay_s);
  }

  WriteJson(schemes, steady, partition, restart);

  std::printf(
      "\nshape check: callbacks and leases both eliminate the per-open\n"
      "validation class. Callbacks hold open-ended promises — stale FOREVER\n"
      "after a healed partition, and a restart costs an epoch-probe plus\n"
      "revalidation storm. Leases bound the staleness by the term and recover\n"
      "from a restart within one term with zero re-establishment traffic\n"
      "(grants ride the replies) — the mutation embargo is the price.\n");
  return 0;
}
