// A1 — Cache validation: check-on-open vs callback invalidation.
//
// Paper (Section 3.2): "Our current design uses check-on-open to simplify
// implementation and reduce server state. However, experience with a
// prototype has convinced us that the cost of frequent cache validation is
// high enough to warrant the additional complexity of an invalidate-on-
// modification approach in our next implementation." Section 5.2 measured
// the cost: validation was 65% of all server calls.
//
// Reproduction: identical workload and identical system in every respect
// EXCEPT the validation scheme (both arms use the revised client-side
// pathnames, datagram RPC, and LWP server, isolating the variable). We
// report server calls, validation traffic, server CPU, open latency — and
// the price callbacks pay: server callback state and break traffic.

#include "bench/harness.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct ArmResult {
  uint64_t total_calls;
  uint64_t validations;
  double cpu_util;
  double open_ms;
  uint64_t callback_promises;
  uint64_t callback_breaks;
};

ArmResult RunArm(bool callbacks) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(1, 16);
  config.campus.vice.callbacks = callbacks;
  config.campus.workstation.venus.validation =
      callbacks ? venus::VenusConfig::Validation::kCallbacks
                : venus::VenusConfig::Validation::kCheckOnOpen;
  config.user_day.operations = 1200;
  // Some genuine sharing so callbacks actually break: users read each
  // other's system binaries by default; raise the edit rate a little.
  config.user_day.p_write_own = 0.05;
  UserDayLab lab(config);
  const SimTime end = lab.Run();

  const auto venus_stats = lab.TotalVenusStats();
  ArmResult r;
  r.total_calls = lab.campus().TotalCalls();
  r.validations = venus_stats.validations;
  r.cpu_util = lab.ServerCpuUtilization(end);
  r.open_ms = venus_stats.MeanOpenLatency() / 1000.0;
  r.callback_promises = lab.campus().server(0).callbacks().promise_count();
  r.callback_breaks = lab.campus().server(0).callbacks().stats().broken;
  return r;
}

}  // namespace

int main() {
  PrintTitle("A1: validation scheme ablation (bench_validation_schemes)",
             "check-on-open made validation 65% of server calls; the revised "
             "system replaces it with callbacks");
  std::printf("workload: 16 workstations x 1200 ops, identical but for the scheme\n\n");

  const ArmResult check = RunArm(/*callbacks=*/false);
  const ArmResult cb = RunArm(/*callbacks=*/true);

  std::printf("%-28s %16s %16s\n", "metric", "check-on-open", "callbacks");
  std::printf("%-28s %16llu %16llu\n", "server calls (total)",
              static_cast<unsigned long long>(check.total_calls),
              static_cast<unsigned long long>(cb.total_calls));
  std::printf("%-28s %16llu %16llu\n", "validation RPCs",
              static_cast<unsigned long long>(check.validations),
              static_cast<unsigned long long>(cb.validations));
  std::printf("%-28s %15.1f%% %15.1f%%\n", "server CPU utilization",
              100.0 * check.cpu_util, 100.0 * cb.cpu_util);
  std::printf("%-28s %13.0f ms %13.0f ms\n", "mean open latency", check.open_ms,
              cb.open_ms);
  std::printf("%-28s %16llu %16llu\n", "callback promises held",
              static_cast<unsigned long long>(check.callback_promises),
              static_cast<unsigned long long>(cb.callback_promises));
  std::printf("%-28s %16llu %16llu\n", "callback breaks sent",
              static_cast<unsigned long long>(check.callback_breaks),
              static_cast<unsigned long long>(cb.callback_breaks));

  std::printf("\nshape check: callbacks eliminate the validation traffic (the 65%%\n"
              "class), cutting total server calls severalfold and open latency on\n"
              "warm opens to the local cache-lookup cost; the cost is server state\n"
              "(one promise per cached file) and a trickle of break messages —\n"
              "exactly the trade Section 3.2 describes.\n");
  return 0;
}
