// Kernel throughput: fiber vs thread backend, wall-clock cost per event.
//
// This bench measures the simulator, not the file system, in two sections:
//
//   dispatch  N activities that only suspend/resume (sim::AlignTo in a
//             loop) — pure kernel events, no file-system work. This is
//             where the backend difference lives, and where the >=10x
//             events/sec requirement is gated: every event is one context
//             switch pair, so the row measures exactly the baton cost.
//   campus    the same full campus day (N clients across 25-workstation
//             clusters running synthetic user scripts) on both backends —
//             the end-to-end number users feel. Here each event carries
//             real Venus/Vice work, so the backend gap is diluted by the
//             (shared) simulation work per event.
//
// The simulated results are byte-identical across backends
// (tests/sim/kernel_backend_test.cc proves it); only wall-clock time,
// memory, and OS context switches differ.
//
//   - kFiber:  one ucontext swap per suspend/resume, pooled stacks,
//              allocation-free steady state.
//   - kThread: one OS thread per activity, baton passed through a
//              mutex+condvar pair — two scheduler round trips per event.
//
// Emits BENCH_kernel_perf.json. With --baseline=PATH it compares the fiber
// rows against a checked-in baseline and exits non-zero if events/sec
// regresses by more than 30% on any row (the CI perf-smoke gate).

#include <sys/resource.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"

namespace {

using namespace itc;
using namespace itc::bench;

// ResetPeakRss/ReadPeakRssKb live in bench/harness.cc (shared by every
// bench); this file keeps only the context-switch counter.
long OsContextSwitches() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_nvcsw + ru.ru_nivcsw;
}

struct Row {
  std::string workload;  // "dispatch", "campus", "shardsolo", "sharded"
  std::string backend;
  uint32_t clients = 0;
  uint32_t ops_per_client = 0;
  uint32_t shards = 1;  // kernels driving the run (1 = solo kernel)
  uint64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  long peak_rss_kb = 0;
  long os_switches = 0;
  double events_per_os_switch = 0;
  double sim_end_s = 0;
};

// N activities, each resuming `waits` times at interleaved virtual times.
// Every event is exactly one suspend/resume round trip with no body work,
// so events/sec here is the reciprocal of the backend's per-event cost.
Row RunDispatch(sim::KernelBackend backend, uint32_t activities, uint32_t waits) {
  sim::Kernel kernel(backend);
  for (uint32_t a = 0; a < activities; ++a) {
    kernel.Spawn("spin" + std::to_string(a), static_cast<SimTime>(a),
                 [a, waits, activities] {
                   SimTime t = static_cast<SimTime>(a);
                   for (uint32_t i = 0; i < waits; ++i) {
                     t += activities;  // keep the N activities interleaved
                     sim::AlignTo(t);
                   }
                 });
  }

  ResetPeakRss();
  const long switches_before = OsContextSwitches();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  kernel.Run();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t1 = std::chrono::steady_clock::now();

  Row r;
  r.workload = "dispatch";
  r.backend = sim::KernelBackendName(backend);
  r.clients = activities;
  r.ops_per_client = waits;
  r.events = kernel.events_dispatched();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events_per_sec = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.peak_rss_kb = ReadPeakRssKb();
  r.os_switches = OsContextSwitches() - switches_before;
  r.events_per_os_switch =
      r.os_switches > 0 ? static_cast<double>(r.events) / static_cast<double>(r.os_switches)
                        : static_cast<double>(r.events);
  r.sim_end_s = static_cast<double>(kernel.now()) / 1e6;
  return r;
}

Row RunDay(sim::KernelBackend backend, uint32_t clients, uint32_t ops) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(clients / 25, 25);
  // Packet sealing is real host CPU (XTEA over every payload byte) but its
  // *simulated* cost is charged separately via CostModel::CryptoCpu, so for
  // a bench of the kernel itself we skip the host-side work. Both backends
  // run the identical configuration; bench_encryption_cost owns the
  // security-cost ablation.
  config.campus.rpc.encrypt = false;
  config.user_day.operations = ops;
  config.user_day.mean_think = Seconds(35);
  config.kernel_backend = backend;
  UserDayLab lab(config);

  ResetPeakRss();
  const long switches_before = OsContextSwitches();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  const SimTime end = lab.Run();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t1 = std::chrono::steady_clock::now();

  Row r;
  r.workload = "campus";
  r.backend = sim::KernelBackendName(backend);
  r.clients = clients;
  r.ops_per_client = ops;
  r.events = lab.last_kernel_events();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events_per_sec = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.peak_rss_kb = ReadPeakRssKb();
  r.os_switches = OsContextSwitches() - switches_before;
  r.events_per_os_switch =
      r.os_switches > 0 ? static_cast<double>(r.events) / static_cast<double>(r.os_switches)
                        : static_cast<double>(r.events);
  r.sim_end_s = static_cast<double>(end) / 1e6;
  return r;
}

// The sharded arm: the same dense day on the solo kernel ("shardsolo") and
// on the kernel group ("sharded"). Shards overlap wall-clock work only when
// every shard has events inside the backbone lookahead window (10 ms
// virtual), so this day is deliberately dense — short think times, eight
// clusters — and the system volume is released read-only everywhere so the
// day's traffic stays cluster-local (the locality configuration the cluster
// design targets, and the one the equivalence test proves bit-identical).
Row RunShardedArm(const char* workload, sim::SchedulerMode mode, uint32_t shards) {
  constexpr uint32_t kClusters = 8;
  constexpr uint32_t kPerCluster = 8;
  constexpr uint32_t kOps = 200;
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(kClusters, kPerCluster);
  config.campus.rpc.encrypt = false;  // same rationale as RunDay
  config.replicate_system_volume = true;
  config.scheduler_mode = mode;
  config.shard_count = mode == sim::SchedulerMode::kSharded ? shards : 0;
  config.user_day.operations = kOps;
  config.user_day.mean_think = Seconds(2);
  config.kernel_backend = sim::KernelBackend::kFiber;
  UserDayLab lab(config);

  ResetPeakRss();
  const long switches_before = OsContextSwitches();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  const SimTime end = lab.Run();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t1 = std::chrono::steady_clock::now();

  Row r;
  r.workload = workload;
  r.backend = sim::KernelBackendName(config.kernel_backend);
  r.clients = kClusters * kPerCluster;
  r.ops_per_client = kOps;
  r.shards = mode == sim::SchedulerMode::kSharded ? shards : 1;
  r.events = lab.last_kernel_events();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events_per_sec = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.peak_rss_kb = ReadPeakRssKb();
  r.os_switches = OsContextSwitches() - switches_before;
  r.events_per_os_switch =
      r.os_switches > 0 ? static_cast<double>(r.events) / static_cast<double>(r.os_switches)
                        : static_cast<double>(r.events);
  r.sim_end_s = static_cast<double>(end) / 1e6;
  return r;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  // One row object per line: the baseline check below (and any awk/grep)
  // parses line-wise, no JSON library needed.
  std::fprintf(f, "{\n  \"bench\": \"kernel_throughput\",\n  \"host_cores\": %u,\n  \"rows\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"backend\": \"%s\", \"clients\": %u, "
                 "\"ops_per_client\": %u, \"shards\": %u, "
                 "\"events\": %llu, \"wall_ms\": %.3f, \"events_per_sec\": %.1f, "
                 "\"peak_rss_kb\": %ld, \"os_ctx_switches\": %ld, "
                 "\"events_per_os_switch\": %.1f, \"sim_end_s\": %.1f}%s\n",
                 r.workload.c_str(), r.backend.c_str(), r.clients, r.ops_per_client, r.shards,
                 static_cast<unsigned long long>(r.events), r.wall_ms, r.events_per_sec,
                 r.peak_rss_kb, r.os_switches, r.events_per_os_switch, r.sim_end_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

// Pulls (workload, clients -> events_per_sec) for fiber rows out of a
// baseline file written by WriteJson. Line-wise sscanf; returns false if
// nothing parsed.
struct BaselineRow {
  std::string workload;
  uint32_t clients = 0;
  double events_per_sec = 0;
};

bool LoadFiberBaseline(const std::string& path, std::vector<BaselineRow>& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[512];
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strstr(line, "\"backend\": \"fiber\"") == nullptr) continue;
    BaselineRow b;
    char workload[32] = {0};
    const char* wl = std::strstr(line, "\"workload\":");
    const char* c = std::strstr(line, "\"clients\":");
    const char* e = std::strstr(line, "\"events_per_sec\":");
    if (wl != nullptr && c != nullptr && e != nullptr &&
        std::sscanf(wl, "\"workload\": \"%31[a-z]\"", workload) == 1 &&
        std::sscanf(c, "\"clients\": %u", &b.clients) == 1 &&
        std::sscanf(e, "\"events_per_sec\": %lf", &b.events_per_sec) == 1) {
      b.workload = workload;
      out.push_back(b);
    }
  }
  std::fclose(f);
  return !out.empty();
}

int CheckBaseline(const std::string& path, const std::vector<Row>& rows) {
  std::vector<BaselineRow> base;
  if (!LoadFiberBaseline(path, base)) {
    std::fprintf(stderr, "baseline %s missing or unparseable\n", path.c_str());
    return 1;
  }
  int failures = 0;
  for (const BaselineRow& b : base) {
    for (const Row& r : rows) {
      if (r.backend != "fiber" || r.workload != b.workload || r.clients != b.clients) {
        continue;
      }
      const double floor = 0.70 * b.events_per_sec;
      const bool ok = r.events_per_sec >= floor;
      std::printf("baseline %-9s N=%-5u %12.0f ev/s vs %12.0f baseline  %s\n",
                  b.workload.c_str(), b.clients, r.events_per_sec, b.events_per_sec,
                  ok ? "ok" : "REGRESSION (>30% drop)");
      if (!ok) ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) baseline = argv[i] + 11;
  }

  PrintTitle("kernel throughput (bench_kernel_throughput)",
             "the revised Vice abandoned process-per-client because context "
             "switches dominated at scale (3.5.2); the simulation kernel "
             "gets the same LWP treatment");

  struct Point {
    uint32_t clients, ops;
  };
  const Point points[] = {{50, 480}, {200, 120}, {1000, 24}};
  std::vector<Row> rows;
  auto print_row = [](const Row& r) {
    std::printf("%8s %8u %6u %10llu %10.1f %14.0f %10.1f %14.1f\n", r.backend.c_str(),
                r.clients, r.ops_per_client, static_cast<unsigned long long>(r.events),
                r.wall_ms, r.events_per_sec, r.peak_rss_kb / 1024.0,
                r.events_per_os_switch);
  };
  auto speedup_at = [&rows](const char* workload, uint32_t clients) {
    double thread_eps = 0, fiber_eps = 0;
    for (const Row& r : rows) {
      if (r.workload != workload || r.clients != clients) continue;
      (r.backend == "fiber" ? fiber_eps : thread_eps) = r.events_per_sec;
    }
    return thread_eps > 0 ? fiber_eps / thread_eps : 0.0;
  };
  const char* header_fmt = "%8s %8s %6s %10s %10s %14s %10s %14s\n";

  PrintSection("kernel dispatch: N activities, suspend/resume only, no body work");
  std::printf(header_fmt, "backend", "clients", "waits", "events", "wall ms", "events/sec",
              "rss MB", "ev/OS-switch");
  for (const Point& p : points) {
    // Constant 400k events per run: `waits` shrinks as N grows.
    const uint32_t waits = 400000 / p.clients;
    for (sim::KernelBackend b : {sim::KernelBackend::kThread, sim::KernelBackend::kFiber}) {
      rows.push_back(RunDispatch(b, p.clients, waits));
      print_row(rows.back());
    }
  }

  PrintSection("full campus day: 25-workstation clusters, ops scaled down with N");
  std::printf(header_fmt, "backend", "clients", "ops", "events", "wall ms", "events/sec",
              "rss MB", "ev/OS-switch");
  for (const Point& p : points) {
    for (sim::KernelBackend b : {sim::KernelBackend::kThread, sim::KernelBackend::kFiber}) {
      rows.push_back(RunDay(b, p.clients, p.ops));
      print_row(rows.back());
    }
  }

  PrintSection("sharded campus day: 8 clusters x 8 workstations, dense (2s think), fiber");
  std::printf("%8s %8s %6s %10s %10s %14s %10s %14s\n", "shards", "clients", "ops", "events",
              "wall ms", "events/sec", "rss MB", "ev/OS-switch");
  constexpr uint32_t kShardArmShards = 8;
  rows.push_back(RunShardedArm("shardsolo", sim::SchedulerMode::kEventDriven, 1));
  const Row& solo = rows.back();
  std::printf("%8u %8u %6u %10llu %10.1f %14.0f %10.1f %14.1f\n", solo.shards, solo.clients,
              solo.ops_per_client, static_cast<unsigned long long>(solo.events), solo.wall_ms,
              solo.events_per_sec, solo.peak_rss_kb / 1024.0, solo.events_per_os_switch);
  const double solo_wall_ms = solo.wall_ms;
  const double solo_sim_end = solo.sim_end_s;
  rows.push_back(RunShardedArm("sharded", sim::SchedulerMode::kSharded, kShardArmShards));
  const Row& shd = rows.back();
  std::printf("%8u %8u %6u %10llu %10.1f %14.0f %10.1f %14.1f\n", shd.shards, shd.clients,
              shd.ops_per_client, static_cast<unsigned long long>(shd.events), shd.wall_ms,
              shd.events_per_sec, shd.peak_rss_kb / 1024.0, shd.events_per_os_switch);
  const double shard_speedup = shd.wall_ms > 0 ? solo_wall_ms / shd.wall_ms : 0.0;
  const unsigned host_cores = std::thread::hardware_concurrency();

  // Acceptance gate: on the dispatch workload — where every event is exactly
  // one context-switch round trip — fiber must beat thread by >=10x at every
  // N >= 200. The campus speedup is reported but not gated: there both
  // backends share the same per-event simulation work, which dilutes the
  // ratio toward 1 as the day gets busier.
  int failures = 0;
  // Sharded gate: 8 shards must reclaim >=3x wall clock over the solo kernel
  // on the same day — but only where 8 shards can actually run in parallel.
  // On narrower hosts the number is reported, not gated (a 1-core runner
  // measures synchronization overhead, not the design).
  {
    const bool same_day = shd.sim_end_s == solo_sim_end;
    const bool gated = host_cores >= 8;
    const bool ok = same_day && (!gated || shard_speedup >= 3.0);
    std::printf("sharded: %u shards on %u host cores, speedup %.2fx %s; sim_end %s\n",
                shd.shards, host_cores, shard_speedup,
                gated ? (shard_speedup >= 3.0 ? "(>=3x required: ok)" : "(>=3x required: FAIL)")
                      : "(>=3x gate skipped: <8 host cores)",
                same_day ? "identical (shard count cannot affect simulated results)"
                         : "DIVERGED — sharding changed simulated results");
    if (!ok) ++failures;
  }
  PrintSection("speedup (fiber vs thread)");
  for (const Point& p : points) {
    const double dispatch = speedup_at("dispatch", p.clients);
    const double campus = speedup_at("campus", p.clients);
    const bool gated = p.clients >= 200;
    const bool ok = !gated || dispatch >= 10.0;
    std::printf("N=%-5u dispatch %6.1fx %-24s campus %5.1fx\n", p.clients, dispatch,
                gated ? (ok ? "(>=10x required: ok)" : "(>=10x required: FAIL)") : "",
                campus);
    if (!ok) ++failures;
  }

  WriteJson("BENCH_kernel_perf.json", rows);
  if (!baseline.empty()) failures += CheckBaseline(baseline, rows);

  if (failures > 0) {
    std::printf("\n%d throughput check(s) failed\n", failures);
    return 1;
  }
  std::printf("\nshape check: both backends report identical sim_end_s for each row\n"
              "(backend choice cannot affect simulated time); the fiber advantage is\n"
              "total on pure dispatch and shrinks on the full day as per-event\n"
              "simulation work (shared by both backends) grows.\n");
  return 0;
}
