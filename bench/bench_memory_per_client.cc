// E5b — Host memory per simulated client, and the 10k-client campus day.
//
// The reproduction's ambition is a campus at the paper's target scale
// ("5000 to 10000 workstations", Section 1). Simulated cost is not the
// obstacle — host memory is: with materialized file contents a populated
// client cost ~2 MB before its day began, capping a 64 GB host near N=2000.
// The lazy content representation (src/common/content.h) drops a populated
// file to a ~32-byte generative ref and dedups identical system binaries
// through the content store, so the bench below can gate real budgets:
//
//   * retained content bytes per client <= 100 KB at N=1000 (>=20x less
//     than the materialized representation's ~2 MB);
//   * peak RSS <= 4 GB for a 10,000-client sharded campus day.
//
// Emits BENCH_memory.json (one row object per line, machine-greppable).
// With --baseline=PATH the run fails (exit 1) if retained bytes/client
// regresses more than 30% against the checked-in baseline — the CI
// perf-smoke job wires this to bench/baseline/BENCH_memory.json.

#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/content.h"

namespace {

using namespace itc;
using namespace itc::bench;

constexpr uint64_t kRetainedPerClientBudget = 100 * 1024;  // bytes, at N=1000
constexpr long kPeakRssBudgetKb = 4L * 1024 * 1024;        // 4 GB, at N=10000

// The 10k arm folds its 400 cluster domains onto this many kernels (domain
// mod shard placement) — one kernel per core on the 8-core reference runner.
// Shard count cannot affect simulated results (ShardEquivalence suite), and
// fewer kernel threads is strictly less host memory and wall clock on
// narrower hosts, so the memory gate stays conservative.
constexpr uint32_t kCampusShards = 8;

struct Row {
  uint32_t clients = 0;
  uint32_t ops_per_client = 0;
  uint32_t shards = 1;
  double sim_end_s = 0;
  double wall_ms = 0;
  long peak_rss_kb = 0;
  uint64_t retained_bytes = 0;   // campus-wide content bytes, dedup-aware
  uint64_t per_client_bytes = 0; // retained_bytes / clients
  uint64_t store_buffers = 0;    // live interned buffers (content store)
  uint64_t store_bytes = 0;
};

// One populated campus plus a short synthetic day. The day matters: it fills
// every Venus cache (local unixfs copies of fetched files), which is exactly
// the state whose footprint the lazy representation must keep flat.
Row RunRow(uint32_t clients, uint32_t ops, bool sharded) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(clients / 25, 25);
  config.campus.rpc.encrypt = false;  // host CPU saving only; accounting unchanged
  config.user_day.operations = ops;
  config.user_day.mean_think = Seconds(10);
  if (sharded) {
    // The 10k row runs one kernel per cluster; the system volume is released
    // read-only everywhere so the day stays cluster-local (the locality the
    // cluster design targets).
    config.replicate_system_volume = true;
    config.scheduler_mode = sim::SchedulerMode::kSharded;
    config.shard_count = kCampusShards;
  }

  ResetPeakRss();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t0 = std::chrono::steady_clock::now();
  UserDayLab lab(config);
  const SimTime end = lab.Run();
  // itcfs-lint: allow(sim-determinism, sim-determinism-transitive) -- host wall clock IS the measurement here
  const auto t1 = std::chrono::steady_clock::now();

  Row r;
  r.clients = clients;
  r.ops_per_client = ops;
  r.shards = sharded ? kCampusShards : 1;
  r.sim_end_s = static_cast<double>(end) / 1e6;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.peak_rss_kb = ReadPeakRssKb();
  r.retained_bytes = lab.campus().RetainedContentBytes();
  r.per_client_bytes = r.retained_bytes / clients;
  r.store_buffers = content::Store::Global().live_buffers();
  r.store_bytes = content::Store::Global().live_bytes();
  return r;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  // One row object per line so the baseline loader (and awk/grep) can parse
  // without a JSON library.
  std::fprintf(f, "{\n  \"bench\": \"memory_per_client\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"clients\": %u, \"ops_per_client\": %u, \"shards\": %u, "
                 "\"sim_end_s\": %.1f, \"wall_ms\": %.1f, \"peak_rss_kb\": %ld, "
                 "\"retained_content_bytes\": %llu, \"retained_per_client_bytes\": %llu, "
                 "\"store_live_buffers\": %llu, \"store_live_bytes\": %llu}%s\n",
                 r.clients, r.ops_per_client, r.shards, r.sim_end_s, r.wall_ms,
                 r.peak_rss_kb, static_cast<unsigned long long>(r.retained_bytes),
                 static_cast<unsigned long long>(r.per_client_bytes),
                 static_cast<unsigned long long>(r.store_buffers),
                 static_cast<unsigned long long>(r.store_bytes),
                 i + 1 != rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

// Baseline rows keyed by client count (retained bytes/client only — RSS is
// runner-dependent and gated by the absolute budget instead).
struct BaselinePoint {
  uint32_t clients = 0;
  unsigned long long per_client = 0;
};

bool LoadBaseline(const std::string& path, std::vector<BaselinePoint>& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[1024];
  while (std::fgets(line, sizeof(line), f)) {
    const char* c = std::strstr(line, "\"clients\":");
    const char* p = std::strstr(line, "\"retained_per_client_bytes\":");
    if (c == nullptr || p == nullptr) continue;
    BaselinePoint b;
    if (std::sscanf(c, "\"clients\": %u", &b.clients) == 1 &&
        std::sscanf(p, "\"retained_per_client_bytes\": %llu", &b.per_client) == 1) {
      out.push_back(b);
    }
  }
  std::fclose(f);
  return !out.empty();
}

// >30% regression on retained bytes/client against the baseline fails the
// run. A tiny absolute slack (4 KB/client) keeps near-zero baselines from
// turning allocator noise into a gate failure.
bool CheckBaseline(const std::vector<Row>& rows, const std::vector<BaselinePoint>& base) {
  bool ok = true;
  for (const Row& r : rows) {
    for (const BaselinePoint& b : base) {
      if (b.clients != r.clients) continue;
      const double limit = 1.30 * static_cast<double>(b.per_client) + 4096.0;
      if (static_cast<double>(r.per_client_bytes) > limit) {
        std::fprintf(stderr,
                     "FAIL: N=%u retained %llu B/client vs baseline %llu (>30%% regression)\n",
                     r.clients, static_cast<unsigned long long>(r.per_client_bytes),
                     b.per_client);
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  uint32_t max_clients = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) baseline_path = argv[i] + 11;
    if (std::strncmp(argv[i], "--max-clients=", 14) == 0)
      max_clients = static_cast<uint32_t>(std::atoi(argv[i] + 14));
  }

  PrintTitle("E5b: host memory per client (bench_memory_per_client)",
             "a 10k-workstation campus (Section 1 target scale) must fit in "
             "host memory; lazy refs + content dedup make it fit");
  std::printf("%8s %5s %7s %12s %16s %14s %10s\n", "clients", "ops", "shards",
              "peak_rss", "retained_total", "retained/cli", "wall");

  struct Arm { uint32_t clients, ops; bool sharded; };
  const Arm arms[] = {{100, 24, false}, {1000, 8, false}, {10000, 4, true}};

  std::vector<Row> rows;
  for (const Arm& a : arms) {
    if (a.clients > max_clients) continue;
    Row r = RunRow(a.clients, a.ops, a.sharded);
    std::printf("%8u %5u %7u %10ld K %14llu %12llu B %8.0f ms\n", r.clients,
                r.ops_per_client, r.shards, r.peak_rss_kb,
                static_cast<unsigned long long>(r.retained_bytes),
                static_cast<unsigned long long>(r.per_client_bytes), r.wall_ms);
    rows.push_back(r);
  }

  WriteJson("BENCH_memory.json", rows);

  // Absolute budgets (the acceptance criteria of the memory-diet change).
  bool ok = true;
  for (const Row& r : rows) {
    if (r.clients == 1000 && r.per_client_bytes > kRetainedPerClientBudget) {
      std::fprintf(stderr, "FAIL: N=1000 retained %llu B/client exceeds %llu budget\n",
                   static_cast<unsigned long long>(r.per_client_bytes),
                   static_cast<unsigned long long>(kRetainedPerClientBudget));
      ok = false;
    }
    if (r.clients == 10000 && r.peak_rss_kb > kPeakRssBudgetKb) {
      std::fprintf(stderr, "FAIL: N=10000 peak RSS %ld KB exceeds %ld KB budget\n",
                   r.peak_rss_kb, kPeakRssBudgetKb);
      ok = false;
    }
  }

  if (!baseline_path.empty()) {
    std::vector<BaselinePoint> base;
    if (!LoadBaseline(baseline_path, base)) {
      std::fprintf(stderr, "cannot load baseline %s\n", baseline_path.c_str());
      return 1;
    }
    if (!CheckBaseline(rows, base)) ok = false;
    if (ok) std::printf("\nbaseline check passed (%s)\n", baseline_path.c_str());
  }

  return ok ? 0 : 1;
}
