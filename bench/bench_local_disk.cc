// A7 — Local disks vs a shared disk server (diskless workstations).
//
// Paper (Section 2.3): "Using a disk server may be cheaper, but will entail
// performance degradation. Scaling to 5000 workstations is more difficult
// when these workstations are paging over the network in addition to
// accessing files remotely. Further, security is compromised unless all
// traffic between the disk server and its clients is encrypted. We are not
// confident that paging traffic can be encrypted without excessive
// performance degradation."
//
// Reproduction: N workstations share one cluster Ethernet and one disk
// server. Each runs the same paging+file activity: the local-disk arm
// serves page I/O from its own disk; the diskless arm ships every page over
// the LAN to the disk-server (with and without encryption). The shared
// segment and server saturate as N grows.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/net/network.h"
#include "src/sim/kernel.h"
#include "src/sim/resource.h"
#include "src/sim/scheduler.h"

namespace {

using namespace itc;

constexpr uint64_t kPageBytes = 4096;
constexpr int kPageIos = 600;       // page faults per workstation per run
constexpr SimTime kThink = Millis(400);

// One workstation generating page I/O.
class Pager : public sim::Process {
 public:
  // Local-disk pager: pages to its own disk.
  Pager(const sim::CostModel& cost, uint64_t seed)
      : cost_(cost), rng_(seed), diskless_(false) {}
  // Diskless pager: pages over `network` to `server` (cpu+disk resources).
  Pager(const sim::CostModel& cost, uint64_t seed, net::Network* network, NodeId self,
        NodeId server, sim::Resource* server_cpu, sim::Resource* server_disk,
        bool encrypted)
      : cost_(cost),
        rng_(seed),
        diskless_(true),
        network_(network),
        self_(self),
        server_(server),
        server_cpu_(server_cpu),
        server_disk_(server_disk),
        encrypted_(encrypted) {}

  SimTime now() const override { return clock_.now(); }
  bool done() const override { return done_ios_ >= kPageIos; }

  void Step() override {
    if (thinking_) {
      clock_.Advance(kThink / 4 + rng_.Below(kThink / 2));
      thinking_ = false;
      return;
    }
    thinking_ = true;
    if (!diskless_) {
      clock_.Advance(cost_.DiskTime(kPageBytes));
    } else {
      // Request to the disk server, page back; both legs on the shared LAN.
      SimTime t = clock_.now();
      if (encrypted_) t += cost_.CryptoCpu(64);
      t = network_->Transfer(self_, server_, 64, t);
      SimTime cpu = cost_.server_cpu_per_call / 4;  // thin block-server path
      if (encrypted_) cpu += cost_.CryptoCpu(kPageBytes);
      t = sim::Charge(*server_cpu_, t, cpu);
      t = sim::Charge(*server_disk_, t, cost_.DiskTime(kPageBytes));
      t = network_->Transfer(server_, self_, kPageBytes + 64, t);
      if (encrypted_) t += cost_.CryptoCpu(kPageBytes);
      clock_.AdvanceTo(t);
    }
    ++done_ios_;
  }

 private:
  sim::CostModel cost_;
  Rng rng_;
  bool diskless_;
  net::Network* network_ = nullptr;
  NodeId self_ = 0;
  NodeId server_ = 0;
  sim::Resource* server_cpu_ = nullptr;
  sim::Resource* server_disk_ = nullptr;
  bool encrypted_ = false;
  sim::Clock clock_;
  bool thinking_ = true;
  int done_ios_ = 0;
};

double RunArm(uint32_t n, int mode /*0=local,1=diskless,2=diskless+crypto*/) {
  const sim::CostModel cost = sim::CostModel::Default1985();
  const net::Topology topo(net::TopologyConfig{1, 1, n});
  net::Network network(topo, cost);
  sim::Resource server_cpu("disk-server.cpu");
  sim::Resource server_disk("disk-server.disk");

  std::vector<std::unique_ptr<Pager>> pagers;
  sim::Scheduler sched;
  for (uint32_t w = 0; w < n; ++w) {
    if (mode == 0) {
      pagers.push_back(std::make_unique<Pager>(cost, 1000 + w));
    } else {
      pagers.push_back(std::make_unique<Pager>(cost, 1000 + w, &network,
                                               topo.WorkstationNode(0, w),
                                               topo.ServerNode(0, 0), &server_cpu,
                                               &server_disk, mode == 2));
    }
    sched.Add(pagers.back().get());
  }
  return ToSeconds(sched.RunAll());
}

}  // namespace

int main() {
  itc::bench::PrintTitle(
      "A7: local disks vs diskless paging (bench_local_disk)",
      "disk servers entail performance degradation; paging traffic likely "
      "cannot be encrypted affordably");
  std::printf("each workstation performs %d x %llu-byte page I/Os; shared 10 Mbit LAN\n\n",
              kPageIos, static_cast<unsigned long long>(kPageBytes));
  std::printf("%8s %14s %14s %20s\n", "clients", "local disk", "disk server",
              "disk server + crypto");

  for (uint32_t n : {1, 5, 10, 20, 40}) {
    const double local_s = RunArm(n, 0);
    const double diskless_s = RunArm(n, 1);
    const double crypto_s = RunArm(n, 2);
    std::printf("%8u %12.1f s %12.1f s %18.1f s\n", n, local_s, diskless_s, crypto_s);
  }

  std::printf("\nshape check: with local disks, completion time is flat in N (paging\n"
              "is private); diskless workstations queue on the shared segment and\n"
              "disk server, and encryption makes the degradation worse — the\n"
              "Section 2.3 justification for requiring workstation disks.\n");
  return 0;
}
