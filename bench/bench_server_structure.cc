// A5 — Server structure: process-per-client vs single-process LWP.
//
// Paper (Section 3.5.2): "Experience with the prototype indicates that
// significant performance degradation is caused by context switching between
// the per-client Unix processes... Our reimplementation will represent a
// server as a single Unix process incorporating a lightweight process
// mechanism."
//
// Reproduction: a call storm from N concurrent clients at one server under
// both structures (everything else identical — datagram transport, callbacks
// on, client paths). We report server CPU consumed, throughput, and the
// completion time of the storm.

#include "bench/harness.h"
#include "src/common/logging.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct ArmResult {
  double server_cpu_s;
  double completion_s;
  double calls_per_cpu_second;
};

ArmResult RunStorm(rpc::ServerStructure structure, uint32_t clients) {
  campus::CampusConfig campus_config = campus::CampusConfig::Revised(1, clients);
  campus_config.rpc.server_structure = structure;

  UserDayLabConfig config;
  config.campus = campus_config;
  config.user_day.operations = 400;
  config.user_day.mean_think = Millis(500);  // storm: nearly back-to-back calls
  UserDayLab lab(config);
  const SimTime end = lab.Run();

  const double cpu_s =
      ToSeconds(lab.campus().server(0).endpoint().cpu().busy_time());
  const double calls = static_cast<double>(lab.campus().TotalCalls());
  return ArmResult{cpu_s, ToSeconds(end), cpu_s > 0 ? calls / cpu_s : 0};
}

}  // namespace

int main() {
  PrintTitle("A5: server structure ablation (bench_server_structure)",
             "per-client Unix processes pay a context switch per call; the "
             "revised LWP server shares one address space");
  std::printf("call storm: N clients x 400 ops, 0.5 s mean think time\n\n");
  std::printf("%8s %22s %22s\n", "", "process-per-client", "single-process LWP");
  std::printf("%8s %10s %11s %10s %11s %9s\n", "clients", "cpu (s)", "done (s)",
              "cpu (s)", "done (s)", "speedup");

  for (uint32_t n : {4, 8, 16, 32}) {
    const ArmResult proc = RunStorm(rpc::ServerStructure::kProcessPerClient, n);
    const ArmResult lwp = RunStorm(rpc::ServerStructure::kLwp, n);
    std::printf("%8u %10.1f %11.1f %10.1f %11.1f %8.1fx\n", n, proc.server_cpu_s,
                proc.completion_s, lwp.server_cpu_s, lwp.completion_s,
                proc.completion_s / std::max(1.0, lwp.completion_s));
  }

  std::printf("\nshape check: the LWP server does the same work with a fraction of\n"
              "the CPU (no per-call process switch), so the storm completes sooner\n"
              "and the gap widens with concurrency — the Section 3.5.2 argument.\n");
  return 0;
}
