// A6 — Cache limit policy: file count vs space.
//
// Paper (Section 3.5.1): "Venus limits the total number of files in the
// cache rather than the total size of the cache, because the latter
// information is difficult to obtain from Unix. In view of our negative
// experience with this approach, we will incorporate a space-limited cache
// management algorithm in our reimplementation."
//
// Reproduction: a mixed-size workload (a few large files among many small
// ones) against both policies with the same nominal budget (a 4 MB disk
// partition ~ 100 average files). The count-limited cache either blows the
// disk budget (when large files pile up) or, capped to stay within it,
// wastes most of the space and refetches constantly.

#include "bench/harness.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct ArmResult {
  double hit_ratio;
  uint64_t fetches;
  double refetched_mb;
  uint64_t peak_cache_bytes;
};

ArmResult RunArm(venus::VenusConfig::CacheLimit policy, uint64_t max_bytes,
                 uint32_t max_files) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(1, 4);
  config.campus.workstation.venus.cache_limit = policy;
  config.campus.workstation.venus.max_cache_bytes = max_bytes;
  config.campus.workstation.venus.max_cache_files = max_files;
  config.user_day.operations = 1500;
  config.user_day.own_files = 120;  // working set larger than the cache
  config.user_day.zipf_theta = 0.7;
  UserDayLab lab(config);
  lab.Run();

  ArmResult r{};
  const auto stats = lab.TotalVenusStats();
  r.hit_ratio = stats.HitRatio();
  r.fetches = stats.fetches;
  r.refetched_mb = static_cast<double>(stats.bytes_fetched) / (1024.0 * 1024.0);
  for (uint32_t w = 0; w < lab.campus().workstation_count(); ++w) {
    r.peak_cache_bytes =
        std::max(r.peak_cache_bytes, lab.campus().workstation(w).venus().cache().data_bytes());
  }
  return r;
}

void PrintArm(const std::string& label, const ArmResult& r) {
  std::printf("%-34s %9.1f%% %9llu %10.1f %11.2f\n", label.c_str(), 100.0 * r.hit_ratio,
              static_cast<unsigned long long>(r.fetches), r.refetched_mb,
              static_cast<double>(r.peak_cache_bytes) / (1024.0 * 1024.0));
}

}  // namespace

int main() {
  PrintTitle("A6: cache limit policy (bench_cache_management)",
             "the prototype's file-count limit misbehaves; the revised cache "
             "is space-limited");
  std::printf("4 workstations x 1500 ops, working set > cache, disk budget 4 MB\n\n");
  std::printf("%-34s %10s %9s %10s %12s\n", "policy", "hit ratio", "fetches",
              "fetched MB", "peak MB used");

  const uint64_t kBudget = 4 * 1024 * 1024;
  // Space limit: exactly the disk budget.
  PrintArm("space limit, 4 MB (revised)",
           RunArm(venus::VenusConfig::CacheLimit::kSpace, kBudget, 1u << 30));
  // Count limit tuned to the budget / average file size (~40 KB): 100 files.
  PrintArm("count limit, 100 files (prototype)",
           RunArm(venus::VenusConfig::CacheLimit::kFileCount, kBudget, 100));
  // Count limit chosen conservatively so worst-case large files cannot blow
  // the partition: far fewer files, most of the budget idle.
  PrintArm("count limit, 25 files (safe)",
           RunArm(venus::VenusConfig::CacheLimit::kFileCount, kBudget, 25));

  std::printf("\nshape check: only the space limit both uses the whole 4 MB budget\n"
              "and can never exceed it. A count limit must pick one failure mode:\n"
              "sized to the average file it under- or over-shoots the disk as file\n"
              "sizes drift (overshoot = ENOSPC on a real partition), and sized for\n"
              "the worst case it strands most of the budget and collapses the hit\n"
              "ratio — the Section 3.5.1 lesson behind the revised algorithm.\n");
  return 0;
}
