// E1 — Server call histogram.
//
// Paper: "A histogram of calls received by servers in actual use shows that
// cache validity checking calls are preponderant, accounting for 65% of the
// total. Calls to obtain file status contribute about 27%, while calls to
// fetch and store files account for 4% and 2% respectively. These four calls
// thus encompass more than 98% of the calls handled by servers."
//
// Reproduction: 20 prototype workstations (check-on-open validation,
// server-side pathnames) drive a synthetic user day against one cluster
// server; we print the call-class distribution next to the paper's numbers,
// and the same workload under the revised (callback) system to show why the
// redesign kills the dominant traffic class.

#include "bench/harness.h"

namespace itc::bench {
namespace {

struct PaperRow {
  vice::CallClass cls;
  double paper_percent;
};

const PaperRow kPaper[] = {
    {vice::CallClass::kValidate, 65.0},
    {vice::CallClass::kStatus, 27.0},
    {vice::CallClass::kFetch, 4.0},
    {vice::CallClass::kStore, 2.0},
};

void RunOne(const std::string& label, campus::CampusConfig campus_config,
            std::vector<RpcStatsRun>* json_runs) {
  UserDayLabConfig config;
  config.campus = std::move(campus_config);
  config.user_day.operations = 1500;
  UserDayLab lab(config);
  lab.Run();

  json_runs->push_back({label, lab.campus().TotalCallStats()});
  const auto hist = lab.campus().TotalCallHistogram();
  // Exclude connection-establishment-time classes? The paper's histogram is
  // steady-state; our TestAuth/GetVolumeInfo traffic lands in kOther/kStatus
  // and is part of the measurement, as it was in the prototype.
  uint64_t total = 0;
  for (const auto& [cls, count] : hist) total += count;

  PrintSection(label + "  (" + std::to_string(total) + " calls at the server)");
  std::printf("%-10s %10s %10s %12s\n", "class", "calls", "measured", "paper");
  double covered = 0;
  for (const PaperRow& row : kPaper) {
    const uint64_t count = hist.contains(row.cls) ? hist.at(row.cls) : 0;
    const double pct = total ? 100.0 * static_cast<double>(count) /
                                   static_cast<double>(total)
                             : 0.0;
    covered += pct;
    std::printf("%-10s %10llu %9.1f%% %11.1f%%\n",
                std::string(vice::CallClassName(row.cls)).c_str(),
                static_cast<unsigned long long>(count), pct, row.paper_percent);
  }
  const uint64_t other = hist.contains(vice::CallClass::kOther)
                             ? hist.at(vice::CallClass::kOther)
                             : 0;
  std::printf("%-10s %10llu %9.1f%% %11s\n", "other",
              static_cast<unsigned long long>(other), 100.0 - covered, "<2%");
}

}  // namespace
}  // namespace itc::bench

int main() {
  using namespace itc;
  using namespace itc::bench;

  PrintTitle("E1: server call histogram (bench_call_histogram)",
             "validate 65%, status 27%, fetch 4%, store 2% (>98% of all calls)");
  std::printf("workload: 20 workstations x 1500 operations, one cluster server,\n"
              "          synthetic user day (zipf file popularity, edit cycles)\n");

  std::vector<RpcStatsRun> json_runs;
  RunOne("prototype (check-on-open, server-side pathnames)",
         campus::CampusConfig::Prototype(1, 20), &json_runs);

  RunOne("revised (callbacks, client-side pathnames) — same workload",
         campus::CampusConfig::Revised(1, 20), &json_runs);

  std::printf("\nshape check: under check-on-open, validation dominates (the paper's\n"
              "65%%) and fetch/store stay single-digit; callbacks eliminate nearly\n"
              "all validation traffic, which is exactly the Section 3.2 argument.\n");

  WriteRpcStatsJson("BENCH_rpc.json", json_runs);
  return 0;
}
