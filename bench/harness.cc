#include "bench/harness.h"

#include <algorithm>

#include "src/common/logging.h"

namespace itc::bench {

void PrintTitle(const std::string& bench, const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", bench.c_str());
  std::printf("paper (SOSP'85, Section 5.2): %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

void PrintSection(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

UserDayLab::UserDayLab(UserDayLabConfig config) : config_(std::move(config)) {
  campus_ = std::make_unique<campus::Campus>(config_.campus);
  ITC_CHECK(campus_->SetupRootVolume().ok());

  // Shared system binaries at server 0 (optionally replicated everywhere).
  auto sysvol = campus_->CreateSystemVolume("sys.sun", "/unix/sun", /*custodian=*/0);
  ITC_CHECK(sysvol.ok());
  system_volume_ = *sysvol;
  ITC_CHECK(workload::PopulateSystemBinaries(*campus_, system_volume_,
                                             config_.user_day.system_files,
                                             config_.seed ^ 0xb1) == Status::kOk);
  if (config_.replicate_system_volume) {
    std::vector<ServerId> sites;
    for (ServerId s = 0; s < campus_->server_count(); ++s) sites.push_back(s);
    ITC_CHECK(campus_->registry().ReleaseReadOnly(system_volume_, "sys.sun.ro", sites).ok());
  }

  // One user per workstation, home volume at the home-cluster server.
  for (uint32_t w = 0; w < campus_->workstation_count(); ++w) {
    const std::string name = "u" + std::to_string(w);
    auto home = campus_->AddUserWithHome(name, "pw-" + name, campus_->HomeServerOf(w));
    ITC_CHECK(home.ok());
    ITC_CHECK(workload::PopulateUserFiles(*campus_, home->volume,
                                          config_.user_day.own_files,
                                          config_.seed ^ w) == Status::kOk);
    auto& ws = campus_->workstation(w);
    ITC_CHECK(ws.LoginWithPassword(home->user, "pw-" + name) == Status::kOk);
    users_.push_back(std::make_unique<workload::SyntheticUser>(
        &ws, "/vice" + home->vice_path, "/bin", config_.user_day,
        config_.seed ^ (0xda7aull & 0xffff) ^ (w * 7919)));
  }

  // 5-minute windows for peak-utilization reporting.
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    campus_->server(s).endpoint().cpu().EnableWindowTracking(Seconds(300));
  }
}

SimTime UserDayLab::Run() {
  sim::Scheduler sched;
  for (auto& u : users_) sched.Add(u.get());
  return sched.RunAll();
}

venus::VenusStats UserDayLab::TotalVenusStats() const {
  venus::VenusStats total;
  for (uint32_t w = 0; w < campus_->workstation_count(); ++w) {
    const auto& s = const_cast<campus::Campus&>(*campus_).workstation(w).venus().stats();
    total.opens += s.opens;
    total.cache_hits += s.cache_hits;
    total.fetches += s.fetches;
    total.stores += s.stores;
    total.validations += s.validations;
    total.stat_calls += s.stat_calls;
    total.bytes_fetched += s.bytes_fetched;
    total.bytes_stored += s.bytes_stored;
    total.callback_breaks_received += s.callback_breaks_received;
    total.open_time_total += s.open_time_total;
  }
  return total;
}

double UserDayLab::ServerCpuUtilization(SimTime end) const {
  double busy = 0;
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    busy += static_cast<double>(
        const_cast<campus::Campus&>(*campus_).server(s).endpoint().cpu().busy_time());
  }
  return end > 0 ? busy / (static_cast<double>(end) *
                           static_cast<double>(campus_->server_count()))
                 : 0.0;
}

double UserDayLab::ServerDiskUtilization(SimTime end) const {
  double busy = 0;
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    busy += static_cast<double>(
        const_cast<campus::Campus&>(*campus_).server(s).endpoint().disk().busy_time());
  }
  return end > 0 ? busy / (static_cast<double>(end) *
                           static_cast<double>(campus_->server_count()))
                 : 0.0;
}

double UserDayLab::PeakServerCpuUtilization() const {
  double peak = 0;
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    for (double u :
         const_cast<campus::Campus&>(*campus_).server(s).endpoint().cpu().WindowUtilization()) {
      peak = std::max(peak, u);
    }
  }
  return peak;
}

}  // namespace itc::bench
