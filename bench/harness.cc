#include "bench/harness.h"

#include <sys/resource.h>

#include <algorithm>
#include <string_view>

#include "src/common/logging.h"

namespace itc::bench {

void ResetPeakRss() {
  if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
    std::fputs("5\n", f);
    std::fclose(f);
  }
}

long ReadPeakRssKb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof(line), f)) {
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return kb;
  }
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

void PrintTitle(const std::string& bench, const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", bench.c_str());
  std::printf("paper (SOSP'85, Section 5.2): %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

void PrintSection(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

namespace {

// Minimal JSON string escaping; op names and labels are plain identifiers
// but backslash/quote safety costs nothing.
std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void WriteRpcStatsJson(const std::string& path, const std::vector<RpcStatsRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RpcStatsRun& run = runs[i];
    std::fprintf(f, "    {\n      \"label\": \"%s\",\n", JsonEscape(run.label).c_str());
    std::fprintf(f, "      \"peak_rss_kb\": %ld,\n",
                 run.peak_rss_kb >= 0 ? run.peak_rss_kb : ReadPeakRssKb());
    std::fprintf(f, "      \"total_calls\": %llu,\n",
                 static_cast<unsigned long long>(run.stats.total_calls()));
    std::fprintf(f, "      \"total_errors\": %llu,\n",
                 static_cast<unsigned long long>(run.stats.total_errors()));
    std::fprintf(f, "      \"ops\": [\n");
    size_t remaining = run.stats.per_op().size();
    for (const auto& [opcode, op] : run.stats.per_op()) {
      remaining -= 1;
      const auto& lat = op.latency;
      std::fprintf(
          f,
          "        {\"opcode\": %u, \"name\": \"%s\", \"class\": \"%s\", "
          "\"calls\": %llu, \"errors\": %llu, \"bytes_in\": %llu, "
          "\"bytes_out\": %llu, \"latency_us\": {\"mean\": %.1f, \"p50\": %lld, "
          "\"p95\": %lld, \"p99\": %lld, \"max\": %lld}}%s\n",
          opcode, JsonEscape(op.name).c_str(),
          JsonEscape(rpc::CallClassName(op.call_class)).c_str(),
          static_cast<unsigned long long>(op.calls),
          static_cast<unsigned long long>(op.errors),
          static_cast<unsigned long long>(op.bytes_in),
          static_cast<unsigned long long>(op.bytes_out), lat.Mean(),
          static_cast<long long>(lat.Percentile(0.5)),
          static_cast<long long>(lat.Percentile(0.95)),
          static_cast<long long>(lat.Percentile(0.99)),
          static_cast<long long>(lat.max()), remaining != 0 ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 != runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

UserDayLab::UserDayLab(UserDayLabConfig config) : config_(std::move(config)) {
  campus_ = std::make_unique<campus::Campus>(config_.campus);
  auto rootvol = campus_->SetupRootVolume();
  ITC_CHECK(rootvol.ok());

  // Shared system binaries at server 0 (optionally replicated everywhere).
  auto sysvol = campus_->CreateSystemVolume("sys.sun", "/unix/sun", /*custodian=*/0);
  ITC_CHECK(sysvol.ok());
  system_volume_ = *sysvol;
  ITC_CHECK(workload::PopulateSystemBinaries(*campus_, system_volume_,
                                             config_.user_day.system_files,
                                             config_.seed ^ 0xb1) == Status::kOk);
  if (config_.replicate_system_volume) {
    std::vector<ServerId> sites;
    for (ServerId s = 0; s < campus_->server_count(); ++s) sites.push_back(s);
    ITC_CHECK(campus_->registry().ReleaseReadOnly(system_volume_, "sys.sun.ro", sites).ok());
  }

  // One user per workstation, home volume at the home-cluster server.
  for (uint32_t w = 0; w < campus_->workstation_count(); ++w) {
    const std::string name = "u" + std::to_string(w);
    auto home = campus_->AddUserWithHome(name, "pw-" + name, campus_->HomeServerOf(w));
    ITC_CHECK(home.ok());
    ITC_CHECK(workload::PopulateUserFiles(*campus_, home->volume,
                                          config_.user_day.own_files,
                                          config_.seed ^ w) == Status::kOk);
    auto& ws = campus_->workstation(w);
    ITC_CHECK(ws.LoginWithPassword(home->user, "pw-" + name) == Status::kOk);
    users_.push_back(std::make_unique<workload::SyntheticUser>(
        &ws, "/vice" + home->vice_path, "/bin", config_.user_day,
        config_.seed ^ (0xda7aull & 0xffff) ^ (w * 7919)));
  }

  if (config_.replicate_system_volume) {
    // Root volume too — path traversal (/vice, /vice/usr, /vice/unix) is the
    // remaining reason a cluster crosses the backbone on a localized day.
    // Released after the loop above so the clones carry every home-volume
    // mount point; the cache flush drops location hints (and root copies)
    // the login traversal fetched from the read-write custodian.
    std::vector<ServerId> sites;
    for (ServerId s = 0; s < campus_->server_count(); ++s) sites.push_back(s);
    ITC_CHECK(campus_->registry().ReleaseReadOnly(*rootvol, "vice.root.ro", sites).ok());
    for (uint32_t w = 0; w < campus_->workstation_count(); ++w) {
      campus_->workstation(w).venus().FlushCache();
    }
  }

  // The populate/login prologue above consumed server resources "before the
  // day"; discard it so utilization and the 5-minute peak windows (anchored
  // at virtual time 0, and only enableable on a fresh resource) measure the
  // synthetic day alone.
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    campus_->server(s).endpoint().cpu().Reset();
    campus_->server(s).endpoint().disk().Reset();
    campus_->server(s).endpoint().cpu().EnableWindowTracking(Seconds(300));
  }
}

SimTime UserDayLab::Run() {
  sim::Scheduler sched;
  sched.set_mode(config_.scheduler_mode);
  sched.set_backend(config_.kernel_backend);
  sched.set_shard_count(config_.shard_count);
  sched.set_lookahead(config_.campus.cost.BackboneLookahead());
  // User i drives workstation i; its shard domain is that workstation's
  // cluster, so a user's intra-cluster traffic never leaves its shard.
  const net::Topology& topo = campus_->network().topology();
  for (uint32_t w = 0; w < users_.size(); ++w) {
    sched.Add(users_[w].get(), topo.ClusterOfNthWorkstation(w));
  }
  const SimTime end = sched.RunAll();
  last_kernel_events_ = sched.last_events();
  return end;
}

venus::VenusStats UserDayLab::TotalVenusStats() const {
  venus::VenusStats total;
  for (uint32_t w = 0; w < campus_->workstation_count(); ++w) {
    const auto& s = const_cast<campus::Campus&>(*campus_).workstation(w).venus().stats();
    total.opens += s.opens;
    total.cache_hits += s.cache_hits;
    total.fetches += s.fetches;
    total.stores += s.stores;
    total.validations += s.validations;
    total.stat_calls += s.stat_calls;
    total.bytes_fetched += s.bytes_fetched;
    total.bytes_stored += s.bytes_stored;
    total.callback_breaks_received += s.callback_breaks_received;
    total.suspect_marks += s.suspect_marks;
    total.lease_grants += s.lease_grants;
    total.lease_renew_calls += s.lease_renew_calls;
    total.leases_renewed += s.leases_renewed;
    total.leases_rejected += s.leases_rejected;
    total.open_time_total += s.open_time_total;
  }
  return total;
}

double UserDayLab::ServerCpuUtilization(SimTime end) const {
  double busy = 0;
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    busy += static_cast<double>(
        const_cast<campus::Campus&>(*campus_).server(s).endpoint().cpu().busy_time());
  }
  return end > 0 ? busy / (static_cast<double>(end) *
                           static_cast<double>(campus_->server_count()))
                 : 0.0;
}

double UserDayLab::ServerDiskUtilization(SimTime end) const {
  double busy = 0;
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    busy += static_cast<double>(
        const_cast<campus::Campus&>(*campus_).server(s).endpoint().disk().busy_time());
  }
  return end > 0 ? busy / (static_cast<double>(end) *
                           static_cast<double>(campus_->server_count()))
                 : 0.0;
}

double UserDayLab::PeakServerCpuUtilization() const {
  double peak = 0;
  for (uint32_t s = 0; s < campus_->server_count(); ++s) {
    for (double u :
         const_cast<campus::Campus&>(*campus_).server(s).endpoint().cpu().WindowUtilization()) {
      peak = std::max(peak, u);
    }
  }
  return peak;
}

}  // namespace itc::bench
