// A8 — The price of not trusting the network.
//
// Paper (Sections 3.4, 5.1): every Vice-Virtue connection is mutually
// authenticated and end-to-end encrypted; "we are awaiting the
// incorporation of the necessary encryption hardware in our workstations
// and servers, since software encryption is too slow to be viable."
//
// Reproduction, two views:
//   (1) data plane: whole-file fetch+store cycles of a large document under
//       no / hardware / default / slow-software encryption — per-byte crypto
//       cost lands squarely on the transfer path;
//   (2) control plane: a metadata-heavy day (mostly validations) — small
//       messages make encryption nearly free there.

#include "bench/harness.h"

#include "src/common/content.h"
#include "src/common/logging.h"
#include "src/workload/source_tree.h"

namespace {

using namespace itc;
using namespace itc::bench;

// (1) Data plane: 20 cold fetch+store round trips of a 512 KB document.
double RunDataPlane(bool encrypt, SimTime crypto_cpu_per_kb) {
  campus::CampusConfig config = campus::CampusConfig::Revised(1, 1);
  config.rpc.encrypt = encrypt;
  config.cost.crypto_cpu_per_kb = crypto_cpu_per_kb;
  campus::Campus campus(config);
  ITC_CHECK(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("u", "pw", 0);
  ITC_CHECK(campus.PopulateDirect(home->volume, "/doc",
                                  content::Ref::ForSeed(1, 512 * 1024)) == Status::kOk);
  auto& ws = campus.workstation(0);
  ITC_CHECK(ws.LoginWithPassword(home->user, "pw") == Status::kOk);

  const SimTime t0 = ws.clock().now();
  for (int i = 0; i < 20; ++i) {
    ws.venus().FlushCache();
    auto data = ws.ReadWholeFile("/vice/usr/u/doc");
    ITC_CHECK(data.ok());
    ITC_CHECK(ws.WriteWholeFile("/vice/usr/u/doc", *data) == Status::kOk);
  }
  return ToSeconds(ws.clock().now() - t0);
}

// (2) Control plane: a validation-heavy prototype day, 8 clients.
double RunControlPlane(bool encrypt, SimTime crypto_cpu_per_kb) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Prototype(1, 8);
  config.campus.rpc.encrypt = encrypt;
  config.campus.cost.crypto_cpu_per_kb = crypto_cpu_per_kb;
  config.user_day.operations = 600;
  config.user_day.mean_think = Seconds(30);
  UserDayLab lab(config);
  lab.Run();
  return lab.TotalVenusStats().MeanOpenLatency() / 1000.0;
}

}  // namespace

int main() {
  PrintTitle("A8: cost of encryption (bench_encryption_cost)",
             "all Vice traffic is encrypted; software encryption was too slow, "
             "hardware was expected to make it cheap");

  const sim::CostModel base;
  struct Arm {
    const char* label;
    bool encrypt;
    SimTime per_kb;
  };
  const Arm arms[] = {
      {"no encryption (trusted net)", false, base.crypto_cpu_per_kb},
      {"hardware encryption (VLSI)", true, base.crypto_cpu_per_kb / 10},
      {"modelled default", true, base.crypto_cpu_per_kb},
      {"slow software (10x default)", true, base.crypto_cpu_per_kb * 10},
  };

  PrintSection("data plane: 20 cold fetch+store cycles of a 512 KB document");
  std::printf("%-34s %14s %10s\n", "configuration", "total (s)", "vs clear");
  double clear_s = 0;
  for (const Arm& arm : arms) {
    const double s = RunDataPlane(arm.encrypt, arm.per_kb);
    if (!arm.encrypt) clear_s = s;
    std::printf("%-34s %14.1f %+9.0f%%\n", arm.label, s,
                clear_s > 0 ? 100.0 * (s / clear_s - 1.0) : 0.0);
  }

  PrintSection("control plane: metadata-heavy prototype day, mean open latency");
  std::printf("%-34s %14s\n", "configuration", "open (ms)");
  for (const Arm& arm : arms) {
    std::printf("%-34s %14.0f\n", arm.label, RunControlPlane(arm.encrypt, arm.per_kb));
  }

  std::printf("\nshape check: on bulk data, slow software encryption adds a large\n"
              "fraction to every transfer (the Section 5.1 complaint), while\n"
              "hardware-speed encryption is within a few percent of cleartext (the\n"
              "Section 3.4 bet). On the metadata-dominated control plane the cost\n"
              "is negligible either way — encrypting everything is affordable once\n"
              "bulk crypto is cheap.\n");
  return 0;
}
