// E2 — Cache hit ratio.
//
// Paper: "Measurements indicate an average cache hit ratio of over 80%
// during actual use."
//
// Reproduction: synthetic user days with zipf file popularity, sweeping the
// Venus cache size. A workstation disk that holds the user's working set
// (the design assumption of Section 3.3) clears 80% comfortably; starving
// the cache shows where the assumption breaks.

#include "bench/harness.h"

int main() {
  using namespace itc;
  using namespace itc::bench;

  PrintTitle("E2: whole-file cache hit ratio (bench_cache_hit_ratio)",
             "average cache hit ratio over 80% during actual use");
  std::printf("workload: 8 workstations x 1500 ops, zipf popularity, revised system\n\n");
  std::printf("%12s %8s %10s %10s %12s %14s\n", "cache size", "opens", "hits",
              "hit ratio", "fetches", "bytes fetched");

  const uint64_t kMB = 1024 * 1024;
  for (uint64_t cache_mb : {1, 2, 5, 10, 20, 50}) {
    UserDayLabConfig config;
    config.campus = campus::CampusConfig::Revised(1, 8);
    config.campus.workstation.venus.max_cache_bytes = cache_mb * kMB;
    config.user_day.operations = 1500;
    UserDayLab lab(config);
    lab.Run();

    const auto stats = lab.TotalVenusStats();
    std::printf("%9llu MB %8llu %10llu %9.1f%% %12llu %11.1f MB\n",
                static_cast<unsigned long long>(cache_mb),
                static_cast<unsigned long long>(stats.opens),
                static_cast<unsigned long long>(stats.cache_hits),
                100.0 * stats.HitRatio(),
                static_cast<unsigned long long>(stats.fetches),
                static_cast<double>(stats.bytes_fetched) / static_cast<double>(kMB));
  }

  std::printf("\nshape check: once the cache holds the working set (paper assumption:\n"
              "\"disks large enough to cache a typical working set of files\"), the\n"
              "hit ratio exceeds the paper's 80%% average.\n");
  return 0;
}
