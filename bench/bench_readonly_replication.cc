// A4 — Read-only replication of system binaries.
//
// Paper (Section 3.2): "Files which are frequently read, but rarely
// modified, may be replicated in this way to enhance availability and to
// improve performance by balancing server loads. The binaries of system
// programs are a typical example"; Section 4: "enabling system programs to
// be fetched from the nearest cluster server rather than its custodian."
//
// Reproduction: three clusters; system binaries custodian-ed by server 0;
// a binary-heavy workload runs with and without read-only replicas at every
// cluster server. We report per-server fetch load, bridge (cross-cluster)
// traffic, and fetch latency.

#include "bench/harness.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct ArmResult {
  std::vector<uint64_t> fetches_per_server;
  uint64_t cross_cluster_messages;
  uint64_t cross_cluster_bytes;
  double mean_open_ms;
};

ArmResult RunArm(bool replicate) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(3, 6);
  config.replicate_system_volume = replicate;
  config.user_day.operations = 800;
  // Binary-heavy: everyone mostly runs programs.
  config.user_day.p_read_system = 0.55;
  config.user_day.p_read_own = 0.15;
  config.user_day.p_stat = 0.15;
  config.user_day.p_list = 0.05;
  config.user_day.p_write_own = 0.02;
  config.user_day.p_tmp = 0.08;
  // Modest caches so binaries are refetched now and then.
  config.campus.workstation.venus.max_cache_bytes = 2 * 1024 * 1024;
  UserDayLab lab(config);
  lab.campus().network().ResetStats();
  lab.Run();

  ArmResult r;
  for (uint32_t s = 0; s < lab.campus().server_count(); ++s) {
    auto hist = lab.campus().server(s).CallHistogram();
    r.fetches_per_server.push_back(hist[vice::CallClass::kFetch]);
  }
  r.cross_cluster_messages = lab.campus().network().stats().cross_cluster_messages;
  r.cross_cluster_bytes = lab.campus().network().stats().cross_cluster_bytes;
  r.mean_open_ms = lab.TotalVenusStats().MeanOpenLatency() / 1000.0;
  return r;
}

void PrintArm(const std::string& label, const ArmResult& r) {
  PrintSection(label);
  std::printf("fetch calls per server:");
  for (size_t s = 0; s < r.fetches_per_server.size(); ++s) {
    std::printf("  s%zu=%llu", s, static_cast<unsigned long long>(r.fetches_per_server[s]));
  }
  std::printf("\ncross-cluster traffic: %llu messages, %.1f MB\n",
              static_cast<unsigned long long>(r.cross_cluster_messages),
              static_cast<double>(r.cross_cluster_bytes) / (1024.0 * 1024.0));
  std::printf("mean open latency: %.0f ms\n", r.mean_open_ms);
}

}  // namespace

int main() {
  PrintTitle("A4: read-only replication of system binaries "
             "(bench_readonly_replication)",
             "replication balances server load and localizes traffic to clusters");
  std::printf("3 clusters x 6 workstations; binaries custodian-ed by server 0;\n"
              "binary-heavy user day (55%% of ops run system programs)\n");

  const ArmResult without = RunArm(false);
  const ArmResult with = RunArm(true);

  PrintArm("custodian only (no replication)", without);
  PrintArm("read-only replicas at every cluster server", with);

  const double imbalance_without =
      static_cast<double>(without.fetches_per_server[0]) /
      std::max<double>(1.0, static_cast<double>(without.fetches_per_server[1] +
                                                without.fetches_per_server[2]) / 2.0);
  const double imbalance_with =
      static_cast<double>(with.fetches_per_server[0]) /
      std::max<double>(1.0, static_cast<double>(with.fetches_per_server[1] +
                                                with.fetches_per_server[2]) / 2.0);
  std::printf("\nfetch-load imbalance (server0 / mean others): %.1fx -> %.1fx\n",
              imbalance_without, imbalance_with);
  std::printf("\nshape check: without replication the custodian absorbs every binary\n"
              "fetch and cross-cluster traffic is heavy; with replicas, fetch load\n"
              "flattens across servers and bridge traffic collapses.\n");
  return 0;
}
