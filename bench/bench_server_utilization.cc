// E4 — Server resource utilization.
//
// Paper: "Server CPU utilization tends to be quite high: nearly 40% on the
// most heavily loaded servers in our environment. Disk utilization is lower,
// averaging about 14% on the most heavily loaded servers. These figures are
// averages over an 8-hour period in the middle of a weekday. The short-term
// resource utilizations are much higher, sometimes peaking at 98% server CPU
// utilization! It is quite clear ... that the server CPU is the performance
// bottleneck in our prototype."
//
// Reproduction: the paper's operating point — about 20 workstations per
// prototype server — runs a synthetic working day. We report average CPU and
// disk utilization over the day and the peak over 5-minute windows, for the
// prototype and (for contrast) the revised server.

#include "bench/harness.h"

namespace {

using namespace itc;
using namespace itc::bench;

void RunOne(const std::string& label, campus::CampusConfig campus_config) {
  UserDayLabConfig config;
  config.campus = std::move(campus_config);
  config.user_day.operations = 1200;
  // An average user over a working day: long idle stretches punctuated by
  // intense edit-compile bursts — the bursts drive the short-term peaks.
  config.user_day.mean_think = Seconds(85);
  config.user_day.burst_probability = 0.03;
  config.user_day.burst_length = 25;
  config.user_day.burst_think = Millis(800);
  UserDayLab lab(config);
  const SimTime end = lab.Run();

  const auto stats = lab.TotalVenusStats();
  std::printf("%-34s %7.1f h %8.1f%% %8.1f%% %8.1f%% %9llu\n", label.c_str(),
              ToSeconds(end) / 3600.0, 100.0 * lab.ServerCpuUtilization(end),
              100.0 * lab.ServerDiskUtilization(end),
              100.0 * lab.PeakServerCpuUtilization(),
              static_cast<unsigned long long>(lab.campus().TotalCalls()));
  std::printf("%-34s mean open latency %.0f ms, hit ratio %.1f%%\n", "",
              stats.MeanOpenLatency() / 1000.0, 100.0 * stats.HitRatio());
}

}  // namespace

int main() {
  PrintTitle("E4: server utilization at 20 clients/server (bench_server_utilization)",
             "CPU ~40% avg / 98% peak, disk ~14%; server CPU is the bottleneck");
  std::printf("workload: 20 workstations x 1200 ops, ~working-day pacing, 1 server\n\n");
  std::printf("%-34s %9s %9s %9s %9s %9s\n", "configuration", "day", "cpu avg",
              "disk avg", "cpu peak", "calls");

  RunOne("prototype (paper's system)", campus::CampusConfig::Prototype(1, 20));
  RunOne("revised (callbacks, LWP, fids)", campus::CampusConfig::Revised(1, 20));

  std::printf("\nshape check: on the prototype, CPU utilization far exceeds disk\n"
              "utilization and 5-minute peaks approach saturation — the CPU is the\n"
              "bottleneck, which is what motivated every revised-implementation\n"
              "change. The revised server runs the same day nearly idle.\n");
  return 0;
}
