// Shared harness for the reproduction benches: standard campus construction,
// multi-user synthetic days, and table printing.
//
// Every bench binary reproduces one quantitative claim of Section 5.2 (or an
// ablation of a design decision); EXPERIMENTS.md maps benches to claims.

#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/campus/campus.h"
#include "src/sim/scheduler.h"
#include "src/venus/venus.h"
#include "src/workload/populate.h"
#include "src/workload/synthetic_user.h"

namespace itc::bench {

void PrintTitle(const std::string& bench, const std::string& paper_claim);
void PrintSection(const std::string& name);

// --- Host memory sampling ---------------------------------------------------
// Peak RSS of the current process in KB since the last ResetPeakRss(), via
// VmHWM in /proc/self/status (clear_refs "5" resets the high-water mark).
// Falls back to the lifetime getrusage(RUSAGE_SELF) peak where /proc is
// unavailable — the fallback cannot be reset, so treat it as monotone.
// Every bench reports this in its BENCH_*.json rows: host memory is a
// first-class result for a simulator whose ambition is 10k clients.
void ResetPeakRss();
long ReadPeakRssKb();

// One labelled CallStats snapshot (e.g. "prototype", "revised") destined for
// the machine-readable dump.
struct RpcStatsRun {
  std::string label;
  rpc::CallStats stats;
  // Peak RSS attributed to this run; -1 = sample at write time instead.
  long peak_rss_kb = -1;
};

// Writes per-op counts, error counts, byte totals, and latency
// mean/p50/p95/p99/max (microseconds) for each run as JSON to `path`.
void WriteRpcStatsJson(const std::string& path, const std::vector<RpcStatsRun>& runs);

// A campus of synthetic users, one per workstation, each with a home volume
// on the server in its own cluster, plus a shared system volume (mounted at
// /unix/sun) custodian-ed by server 0 and optionally released read-only to
// every server.
struct UserDayLabConfig {
  campus::CampusConfig campus;
  workload::UserDayConfig user_day;
  bool replicate_system_volume = false;
  uint64_t seed = 20251985;
  // Event-driven (arrival-order) by default; bench_kernel_fidelity runs the
  // same day under the conservative call-order baseline to measure its error.
  sim::SchedulerMode scheduler_mode = sim::SchedulerMode::kEventDriven;
  // Fiber by default; bench_kernel_throughput runs both to compare wall-clock
  // cost. Backend choice cannot affect simulated results (docs/KERNEL.md).
  sim::KernelBackend kernel_backend = sim::DefaultKernelBackend();
  // kSharded only: shards to run (0 = one per cluster, clamped by
  // ITCFS_SHARDS). Shard count cannot affect simulated results either.
  uint32_t shard_count = 0;
};

class UserDayLab {
 public:
  explicit UserDayLab(UserDayLabConfig config);

  // Runs every user to completion; returns the final virtual time.
  SimTime Run();

  // Kernel events dispatched by the last Run() (resumption count).
  uint64_t last_kernel_events() const { return last_kernel_events_; }

  campus::Campus& campus() { return *campus_; }
  VolumeId system_volume() const { return system_volume_; }

  // Aggregated Venus statistics across all workstations.
  venus::VenusStats TotalVenusStats() const;
  // Aggregate server utilizations over [0, end].
  double ServerCpuUtilization(SimTime end) const;
  double ServerDiskUtilization(SimTime end) const;
  // Peak CPU utilization over tracking windows, across servers.
  double PeakServerCpuUtilization() const;

  const std::vector<std::unique_ptr<workload::SyntheticUser>>& users() const {
    return users_;
  }

 private:
  UserDayLabConfig config_;
  std::unique_ptr<campus::Campus> campus_;
  VolumeId system_volume_ = kInvalidVolume;
  std::vector<std::unique_ptr<workload::SyntheticUser>> users_;
  uint64_t last_kernel_events_ = 0;
};

}  // namespace itc::bench

#endif  // BENCH_HARNESS_H_
