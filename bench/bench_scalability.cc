// E5 — Scalability: clients per server.
//
// Paper: "In actual use, we operate our system with about 20 workstations
// per server. At this client/server ratio, our users perceive the overall
// performance of the workstations to be equal to or better than that of the
// large timesharing systems on campus. However, there have been a few
// occasions when intense file system activity by a few users has drastically
// lowered performance for all other active users."
//
// Reproduction: sweep the number of active workstations on one prototype
// server, reporting mean open latency and server CPU utilization — the knee
// appears as the CPU saturates. A final row adds one "intense" user (no
// think time, cold cache) to 19 normal ones to reproduce the everyone-
// suffers effect.

#include <cstdlib>

#include "bench/harness.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct RowResult {
  double cpu_util;
  double open_ms;
  double hit_ratio;
};

// The paper's target scale (Section 1: "5000 to 10000 workstations"), run as
// one campus: 400 clusters x 25 workstations, one server per cluster, one
// kernel per cluster (sharded conservative sync), system volume replicated
// read-only everywhere so the day stays cluster-local. Affordable on one
// host only because populated/cached file contents are lazy refs
// (src/common/content.h) — see bench_memory_per_client for the budgets.
struct CampusRow {
  uint32_t clients;
  double cpu_util;
  double open_ms;
  double hit_ratio;
  long peak_rss_kb;
};

CampusRow RunCampusScale(uint32_t clusters, uint32_t per_cluster, uint32_t ops) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(clusters, per_cluster);
  config.campus.rpc.encrypt = false;  // host CPU saving only
  config.replicate_system_volume = true;
  config.scheduler_mode = sim::SchedulerMode::kSharded;
  // 400 cluster domains fold onto 8 kernels (one per reference-runner core);
  // shard count cannot affect simulated results (ShardEquivalence suite).
  config.shard_count = 8;
  config.user_day.operations = ops;
  config.user_day.mean_think = Seconds(10);
  ResetPeakRss();
  UserDayLab lab(config);
  const SimTime end = lab.Run();
  const auto stats = lab.TotalVenusStats();
  return CampusRow{clusters * per_cluster, lab.ServerCpuUtilization(end),
                   stats.MeanOpenLatency() / 1000.0, stats.HitRatio(),
                   ReadPeakRssKb()};
}

RowResult RunDay(uint32_t clients) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Prototype(1, clients);
  config.user_day.operations = 600;
  config.user_day.mean_think = Seconds(35);
  UserDayLab lab(config);
  const SimTime end = lab.Run();
  const auto stats = lab.TotalVenusStats();
  return RowResult{lab.ServerCpuUtilization(end), stats.MeanOpenLatency() / 1000.0,
                   stats.HitRatio()};
}

// A normal population plus `hogs` zero-think, cache-hostile users.
RowResult RunDayWithHogs(uint32_t normal, uint32_t hogs) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Prototype(1, normal + hogs);
  config.user_day.operations = 600;
  config.user_day.mean_think = Seconds(35);
  UserDayLab lab(config);

  // Shrink the hogs' caches to force misses and remove their think time by
  // replacing their scripts.
  std::vector<std::unique_ptr<workload::SyntheticUser>> hog_users;
  sim::Scheduler sched;
  for (uint32_t w = 0; w < lab.campus().workstation_count(); ++w) {
    if (w < hogs) {
      workload::UserDayConfig hog_cfg = config.user_day;
      hog_cfg.mean_think = Millis(200);
      hog_cfg.operations = 3000;
      hog_cfg.zipf_theta = 0.0;  // no locality: constant misses
      hog_cfg.p_read_own = 0.70;
      hog_cfg.p_stat = 0.10;
      hog_cfg.p_read_system = 0.10;
      hog_cfg.p_list = 0.05;
      hog_cfg.p_write_own = 0.05;
      hog_cfg.p_tmp = 0.0;
      hog_users.push_back(std::make_unique<workload::SyntheticUser>(
          &lab.campus().workstation(w), "/vice/usr/u" + std::to_string(w), "/bin",
          hog_cfg, 4242 + w));
      sched.Add(hog_users.back().get());
    } else {
      sched.Add(lab.users()[w].get());
    }
  }
  const SimTime end = sched.RunUntil(Seconds(4000));

  // Report the experience of the NORMAL users only.
  venus::VenusStats normal_stats;
  for (uint32_t w = hogs; w < lab.campus().workstation_count(); ++w) {
    const auto& s = lab.campus().workstation(w).venus().stats();
    normal_stats.opens += s.opens;
    normal_stats.open_time_total += s.open_time_total;
    normal_stats.cache_hits += s.cache_hits;
  }
  double busy = static_cast<double>(lab.campus().server(0).endpoint().cpu().busy_time());
  return RowResult{busy / static_cast<double>(end),
                   normal_stats.MeanOpenLatency() / 1000.0, normal_stats.HitRatio()};
}

}  // namespace

int main() {
  PrintTitle("E5: clients per server (bench_scalability)",
             "~20 clients/server feels like timesharing; a few intense users "
             "can drag everyone down");
  std::printf("workload: prototype server, N workstations x 600 ops each\n\n");
  std::printf("%10s %10s %16s %10s\n", "clients", "cpu util", "open latency", "hit ratio");

  // N up to 200 on one prototype server: far past the paper's operating
  // point, affordable since the kernel's fiber backend (docs/KERNEL.md).
  for (uint32_t n : {1, 5, 10, 20, 40, 50, 60, 100, 200}) {
    const RowResult r = RunDay(n);
    std::printf("%10u %9.1f%% %13.0f ms %9.1f%%\n", n, 100.0 * r.cpu_util, r.open_ms,
                100.0 * r.hit_ratio);
  }

  PrintSection("19 normal users + 1 intense user (cache-hostile, no think time)");
  const RowResult calm = RunDay(19);
  const RowResult hogged = RunDayWithHogs(19, 1);
  std::printf("%-30s %9.1f%% %13.0f ms\n", "19 normal users alone",
              100.0 * calm.cpu_util, calm.open_ms);
  std::printf("%-30s %9.1f%% %13.0f ms   <- everyone suffers\n",
              "same + 1 intense user", 100.0 * hogged.cpu_util, hogged.open_ms);

  std::printf("\nshape check: open latency is flat until the server CPU saturates\n"
              "(the knee sits near the paper's 20 clients/server operating point),\n"
              "and one intense user measurably degrades every other user.\n");

  // Section 1 target scale, revised system. Skippable for quick local runs
  // (ITCFS_E5_CAMPUS=0): the row costs minutes of wall clock, all of it
  // campus construction and population.
  const char* campus_env = std::getenv("ITCFS_E5_CAMPUS");
  if (campus_env == nullptr || campus_env[0] != '0') {
    PrintSection("campus scale: 10,000 workstations, 400 clusters, sharded kernels");
    const CampusRow big = RunCampusScale(400, 25, /*ops=*/4);
    std::printf("%10u %9.1f%% %13.0f ms %9.1f%%   peak RSS %ld KB\n", big.clients,
                100.0 * big.cpu_util, big.open_ms, 100.0 * big.hit_ratio,
                big.peak_rss_kb);
    std::printf("\nat 25 clients/server the revised system holds every cluster at\n"
                "timesharing-grade latency simultaneously; host memory, not simulated\n"
                "cost, is the scale limiter (see bench_memory_per_client).\n");
  }
  return 0;
}
