// A3 — Pathname traversal: server-side vs client-side, and fid invariance.
//
// Paper (Section 5.3): "In our revised implementation, Venus will translate
// a Vice pathname into a file identifier by caching the intermediate
// directories from Vice and traversing them. The offloading of pathname
// traversal from servers to clients will reduce the utilization of the
// server CPU and hence improve the scalability of our design. In addition,
// file identifiers will remain invariant across renames, thereby allowing us
// to support renaming of arbitrary subtrees."
//
// Reproduction: an open storm over a deep directory tree under (a) the
// prototype's server-side traversal and (b) the revised client-side
// traversal; we report server CPU consumed per open. Then the rename check:
// a directory high in the tree is renamed and the client's cached fids keep
// working without re-resolution.

#include "bench/harness.h"
#include "src/common/logging.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct ArmResult {
  double server_cpu_per_open_ms;
  double open_ms;
  uint64_t server_calls;
};

constexpr int kDepth = 6;
constexpr int kFilesPerRun = 40;
constexpr int kRounds = 5;

std::string DeepDir() {
  std::string d = "/vice/usr/u";
  for (int i = 0; i < kDepth; ++i) d += "/d" + std::to_string(i);
  return d;
}

ArmResult RunArm(campus::CampusConfig campus_config) {
  campus::Campus campus(std::move(campus_config));
  ITC_CHECK(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("u", "pw", 0);
  // Deep tree, populated administratively.
  std::string rel;
  for (int i = 0; i < kDepth; ++i) rel += "/d" + std::to_string(i);
  for (int f = 0; f < kFilesPerRun; ++f) {
    ITC_CHECK(campus.PopulateDirect(home->volume, rel + "/f" + std::to_string(f),
                                    ToBytes("data")) == Status::kOk);
  }

  auto& ws = campus.workstation(0);
  ITC_CHECK(ws.LoginWithPassword(home->user, "pw") == Status::kOk);

  const std::string dir = DeepDir();
  const SimTime cpu0 = campus.server(0).endpoint().cpu().busy_time();
  campus.server(0).ResetStats();
  ws.venus().ResetStats();
  for (int round = 0; round < kRounds; ++round) {
    for (int f = 0; f < kFilesPerRun; ++f) {
      ITC_CHECK(ws.ReadWholeFile(dir + "/f" + std::to_string(f)).ok());
    }
  }
  const auto stats = ws.venus().stats();
  const double cpu_ms = static_cast<double>(campus.server(0).endpoint().cpu().busy_time() -
                                            cpu0) /
                        1000.0;
  return ArmResult{cpu_ms / static_cast<double>(stats.opens),
                   stats.MeanOpenLatency() / 1000.0, campus.server(0).total_calls()};
}

}  // namespace

int main() {
  PrintTitle("A3: pathname traversal offload (bench_pathname_traversal)",
             "client-side traversal cuts server CPU per open; fids survive renames");
  std::printf("workload: %d opens of files %d directories deep (%d rounds x %d files)\n\n",
              kRounds * kFilesPerRun, kDepth, kRounds, kFilesPerRun);

  const ArmResult server_side = RunArm(campus::CampusConfig::Prototype(1, 1));
  const ArmResult client_side = RunArm(campus::CampusConfig::Revised(1, 1));

  std::printf("%-30s %18s %18s\n", "metric", "server-side paths", "client-side paths");
  std::printf("%-30s %15.1f ms %15.1f ms\n", "server CPU per open",
              server_side.server_cpu_per_open_ms, client_side.server_cpu_per_open_ms);
  std::printf("%-30s %15.1f ms %15.1f ms\n", "mean open latency", server_side.open_ms,
              client_side.open_ms);
  std::printf("%-30s %18llu %18llu\n", "server calls",
              static_cast<unsigned long long>(server_side.server_calls),
              static_cast<unsigned long long>(client_side.server_calls));

  // --- Fid invariance across renames --------------------------------------------
  PrintSection("rename of an arbitrary subtree (revised mode)");
  campus::Campus campus(campus::CampusConfig::Revised(1, 1));
  ITC_CHECK(campus.SetupRootVolume().ok());
  auto home = campus.AddUserWithHome("u", "pw", 0);
  ITC_CHECK(campus.PopulateDirect(home->volume, "/proj/deep/file", ToBytes("payload")) ==
            Status::kOk);
  auto& ws = campus.workstation(0);
  ITC_CHECK(ws.LoginWithPassword(home->user, "pw") == Status::kOk);
  ITC_CHECK(ws.ReadWholeFile("/vice/usr/u/proj/deep/file").ok());

  const uint64_t fetches_before = ws.venus().stats().fetches;
  ITC_CHECK(ws.Rename("/vice/usr/u/proj", "/vice/usr/u/archive") == Status::kOk);
  auto moved = ws.ReadWholeFile("/vice/usr/u/archive/deep/file");
  ITC_CHECK(moved.ok());
  const uint64_t refetched_files = ws.venus().stats().fetches - fetches_before;
  std::printf("subtree renamed; file readable at new path: yes\n");
  std::printf("file data refetched after rename: %llu (cached copy stayed valid — the\n"
              "fid did not change; only directory data was re-read)\n",
              static_cast<unsigned long long>(refetched_files > 1 ? refetched_files - 1
                                                                  : 0));
  std::printf("\nshape check: server CPU per open drops materially with client-side\n"
              "traversal, and renames of arbitrary subtrees preserve cached data.\n");
  return 0;
}
