// A10 — Write-back policy: store-on-close vs deferred.
//
// Paper (Section 3.2): "Changes to a cached file may be transmitted on
// close to the corresponding custodian or deferred until a later time. In
// our design, Virtue stores a file back when it is closed. We have adopted
// this approach in order to simplify recovery from workstation crashes. It
// also results in a better approximation to a timesharing file system,
// where changes by one user are immediately visible to all other users."
//
// Reproduction of the trade: deferral coalesces repeated edits into fewer,
// later stores (less traffic), at the price of a crash-loss window and
// stale remote visibility. An edit-heavy day runs under both policies, then
// every workstation crashes mid-afternoon and we count what was lost.

#include "bench/harness.h"

#include "src/common/logging.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct ArmResult {
  uint64_t stores;
  uint64_t bytes_stored_mb;
  uint64_t files_lost_in_crash;
};

ArmResult RunArm(venus::VenusConfig::WriteBack policy, uint32_t max_dirty) {
  UserDayLabConfig config;
  config.campus = campus::CampusConfig::Revised(1, 8);
  config.campus.workstation.venus.write_back = policy;
  config.campus.workstation.venus.max_dirty_files = max_dirty;
  config.user_day.operations = 1000;
  config.user_day.p_write_own = 0.25;  // an editing-heavy afternoon
  config.user_day.p_read_own = 0.30;
  config.user_day.p_stat = 0.20;
  config.user_day.p_read_system = 0.10;
  config.user_day.own_files = 25;  // tight working set: edits repeat files
  UserDayLab lab(config);
  lab.Run();

  ArmResult r{};
  const auto stats = lab.TotalVenusStats();
  r.stores = stats.stores;
  r.bytes_stored_mb = stats.bytes_stored >> 20;
  // The machines now crash without warning; whatever sat in a deferred
  // queue is gone.
  for (uint32_t w = 0; w < lab.campus().workstation_count(); ++w) {
    r.files_lost_in_crash += lab.campus().workstation(w).venus().dirty_count();
    lab.campus().workstation(w).venus().SimulateCrash();
  }
  return r;
}

}  // namespace

int main() {
  PrintTitle("A10: write-back policy ablation (bench_write_back)",
             "store-on-close chosen for crash recovery and timesharing-like "
             "visibility; deferral trades safety for traffic");
  std::printf("8 workstations x 1000 ops, edit-heavy day, then every machine "
              "crashes\n\n");
  std::printf("%-34s %9s %10s %18s\n", "policy", "stores", "stored MB",
              "files lost @crash");

  const ArmResult on_close = RunArm(venus::VenusConfig::WriteBack::kOnClose, 10);
  const ArmResult deferred10 = RunArm(venus::VenusConfig::WriteBack::kDeferred, 10);
  const ArmResult deferred50 = RunArm(venus::VenusConfig::WriteBack::kDeferred, 50);

  auto row = [](const char* label, const ArmResult& r) {
    std::printf("%-34s %9llu %10llu %18llu\n", label,
                static_cast<unsigned long long>(r.stores),
                static_cast<unsigned long long>(r.bytes_stored_mb),
                static_cast<unsigned long long>(r.files_lost_in_crash));
  };
  row("store-on-close (the paper)", on_close);
  row("deferred, flush at 10 dirty", deferred10);
  row("deferred, flush at 50 dirty", deferred50);

  std::printf("\nshape check: deferral cuts store traffic (coalesced edits) but every\n"
              "crash loses the queue — store-on-close loses nothing, which is why\n"
              "the paper picked it despite the extra stores.\n");
  return 0;
}
