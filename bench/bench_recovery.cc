// A17 — Server crash recovery: restart time vs volume size and log length.
//
// Paper (Section 3.5 / 2.2, Integrity): the file system must "be resilient
// to hardware and software failures" — a custodian that dies mid-operation
// comes back by restoring checkpoint images, replaying committed intentions,
// and salvaging every volume. This bench measures the two recovery cost
// drivers separately:
//
//   * volume size  — with an empty intention log, restart cost is restore
//     (proportional to image bytes) plus salvage (proportional to vnodes);
//   * log length   — with checkpointing disabled, restart cost grows with
//     the number of committed intentions that must be replayed.
//
// Output: BENCH_recovery.json with both curves.

#include "bench/harness.h"

#include <cstdio>

#include "src/common/logging.h"

namespace {

using namespace itc;
using namespace itc::bench;

struct Point {
  uint32_t x = 0;              // files or writes, per curve
  uint64_t vnodes = 0;         // across all volumes on the server
  uint64_t image_bytes = 0;    // checkpoint footprint restored
  uint64_t log_records = 0;    // intention records at crash time
  uint32_t replayed = 0;
  SimTime recovery_us = 0;
  long peak_rss_kb = 0;
};

struct Lab {
  std::unique_ptr<campus::Campus> campus;
  UserId user = kAnonymousUser;
};

Lab MakeLab(uint32_t checkpoint_interval) {
  auto config = campus::CampusConfig::Revised(1, 1);
  config.vice.log_checkpoint_interval = checkpoint_interval;
  Lab lab;
  lab.campus = std::make_unique<campus::Campus>(config);
  ITC_CHECK(lab.campus->SetupRootVolume().ok());
  auto home = lab.campus->AddUserWithHome("a", "pw", /*custodian=*/0);
  ITC_CHECK(home.ok());
  lab.user = home->user;
  return lab;
}

uint64_t ServerVnodes(vice::ViceServer& server) {
  uint64_t n = 0;
  for (const auto* vol :
       {server.FindVolume(1), server.FindVolume(2), server.FindVolume(3)}) {
    if (vol != nullptr) n += vol->vnode_count();
  }
  return n;
}

// Recovery time as the volume grows. Checkpoint interval 1 keeps the log
// empty, so the measurement isolates restore + salvage.
Point RunVolumeSizePoint(uint32_t files) {
  auto [campus, user] = MakeLab(/*checkpoint_interval=*/1);
  auto& ws = campus->workstation(0);
  ITC_CHECK(ws.LoginWithPassword(user, "pw") == Status::kOk);
  const Bytes payload(4096, 0x5a);
  for (uint32_t i = 0; i < files; ++i) {
    ITC_CHECK(ws.WriteWholeFile("/vice/usr/a/f" + std::to_string(i), payload) ==
              Status::kOk);
  }

  Point p;
  p.x = files;
  p.vnodes = ServerVnodes(campus->server(0));
  p.image_bytes = campus->server(0).stable_store().image_bytes();
  p.log_records = campus->server(0).stable_store().log().size();
  campus->CrashServer(0);
  auto report = campus->RestartServer(0, ws.clock().now());
  ITC_CHECK(report.clean());
  p.replayed = report.intentions_replayed;
  p.recovery_us = report.recovery_time;
  p.peak_rss_kb = ReadPeakRssKb();
  return p;
}

// Recovery time as the intention log grows. Checkpointing disabled, so every
// committed record must be replayed over the last checkpoint image.
Point RunLogLengthPoint(uint32_t writes) {
  auto [campus, user] = MakeLab(/*checkpoint_interval=*/0);
  auto& ws = campus->workstation(0);
  ITC_CHECK(ws.LoginWithPassword(user, "pw") == Status::kOk);
  const Bytes payload(1024, 0x5a);
  for (uint32_t i = 0; i < writes; ++i) {
    ITC_CHECK(ws.WriteWholeFile("/vice/usr/a/f" + std::to_string(i % 8), payload) ==
              Status::kOk);
  }

  Point p;
  p.x = writes;
  p.vnodes = ServerVnodes(campus->server(0));
  p.image_bytes = campus->server(0).stable_store().image_bytes();
  p.log_records = campus->server(0).stable_store().log().size();
  campus->CrashServer(0);
  auto report = campus->RestartServer(0, ws.clock().now());
  ITC_CHECK(report.clean());
  p.replayed = report.intentions_replayed;
  p.recovery_us = report.recovery_time;
  p.peak_rss_kb = ReadPeakRssKb();
  return p;
}

void PrintCurve(const char* x_name, const std::vector<Point>& curve) {
  std::printf("  %10s %8s %12s %10s %9s %13s\n", x_name, "vnodes", "image_bytes",
              "log_recs", "replayed", "recovery_us");
  for (const Point& p : curve) {
    std::printf("  %10u %8llu %12llu %10llu %9u %13lld\n", p.x,
                static_cast<unsigned long long>(p.vnodes),
                static_cast<unsigned long long>(p.image_bytes),
                static_cast<unsigned long long>(p.log_records), p.replayed,
                static_cast<long long>(p.recovery_us));
  }
}

void WriteJson(const std::string& path, const std::vector<Point>& by_size,
               const std::vector<Point>& by_log) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ITC_CHECK(f != nullptr);
  auto emit_curve = [&](const char* name, const char* x_name,
                        const std::vector<Point>& curve, bool last) {
    std::fprintf(f, "  \"%s\": [\n", name);
    for (size_t i = 0; i < curve.size(); ++i) {
      const Point& p = curve[i];
      std::fprintf(f,
                   "    {\"%s\": %u, \"vnodes\": %llu, \"image_bytes\": %llu, "
                   "\"log_records\": %llu, \"replayed\": %u, \"recovery_us\": %lld, "
                   "\"peak_rss_kb\": %ld}%s\n",
                   x_name, p.x, static_cast<unsigned long long>(p.vnodes),
                   static_cast<unsigned long long>(p.image_bytes),
                   static_cast<unsigned long long>(p.log_records), p.replayed,
                   static_cast<long long>(p.recovery_us), p.peak_rss_kb,
                   i + 1 < curve.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", last ? "" : ",");
  };
  std::fprintf(f, "{\n");
  emit_curve("volume_size_curve", "files", by_size, /*last=*/false);
  emit_curve("log_length_curve", "writes", by_log, /*last=*/true);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  PrintTitle("A17: crash-recovery time (bench_recovery)",
             "restart = restore images + replay committed intentions + salvage");

  PrintSection("recovery time vs volume size (log empty: restore + salvage)");
  std::vector<Point> by_size;
  for (uint32_t files : {8u, 32u, 128u, 512u}) by_size.push_back(RunVolumeSizePoint(files));
  PrintCurve("files", by_size);

  PrintSection("recovery time vs intention-log length (checkpointing off)");
  std::vector<Point> by_log;
  for (uint32_t writes : {8u, 32u, 128u, 512u}) by_log.push_back(RunLogLengthPoint(writes));
  PrintCurve("writes", by_log);

  WriteJson("BENCH_recovery.json", by_size, by_log);
  std::printf("\nwrote BENCH_recovery.json\n");
  return 0;
}
