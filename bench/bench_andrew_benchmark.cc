// E3 — The five-phase benchmark (local vs remote).
//
// Paper: "On a Sun workstation with a local disk, the benchmark takes about
// 1000 seconds to complete when all files are obtained locally. Our
// experiments show that the same benchmark takes about 80% longer when the
// workstation is obtaining all its files from an unloaded Vice server."
//
// Reproduction: the 70-file source tree, five phases (MakeDir, Copy,
// ScanDir, ReadAll, Make), run (a) entirely on the local disk, (b) against
// an unloaded prototype server with a cold cache, (c) same with a warm
// cache, and (d) against the revised server — showing where the 80% goes.

#include "bench/harness.h"

#include "src/common/logging.h"
#include "src/workload/benchmark5.h"

namespace {

using namespace itc;
using namespace itc::bench;
using workload::Benchmark5Result;
using workload::kPhaseCount;
using workload::Phase;
using workload::PhaseName;

void PrintRow(const std::string& label, const Benchmark5Result& r, double vs_local) {
  std::printf("%-28s", label.c_str());
  for (int p = 0; p < kPhaseCount; ++p) {
    std::printf(" %8.1f", ToSeconds(r.phase_time[p]));
  }
  std::printf(" %9.1f", ToSeconds(r.total));
  if (vs_local > 0) {
    std::printf("  %+5.0f%%", 100.0 * (ToSeconds(r.total) / vs_local - 1.0));
  }
  std::printf("\n");
}

Result<Benchmark5Result> RunRemote(campus::CampusConfig campus_config,
                                   const workload::SourceTreeSpec& spec, bool warm) {
  campus::Campus campus(std::move(campus_config));
  RETURN_IF_ERROR(campus.SetupRootVolume().status());
  ASSIGN_OR_RETURN(auto home, campus.AddUserWithHome("u", "pw", 0));
  auto& ws = campus.workstation(0);
  RETURN_IF_ERROR(ws.LoginWithPassword(home.user, "pw"));
  RETURN_IF_ERROR(workload::InstallSourceTree(ws, "/vice/usr/u/src", spec, 99));
  if (warm) {
    // Prime the cache with one throwaway pass over the sources.
    for (const auto& f : spec.files) {
      RETURN_IF_ERROR(ws.ReadWholeFile("/vice/usr/u/src/" + f.relative_path).status());
    }
  } else {
    ws.venus().FlushCache();
  }
  return workload::RunBenchmark5(ws, "/vice/usr/u/src", "/vice/usr/u/target", spec);
}

}  // namespace

int main() {
  PrintTitle("E3: five-phase benchmark, local vs remote (bench_andrew_benchmark)",
             "~1000 s all-local on a Sun; ~80% longer from an unloaded Vice server");

  const workload::SourceTreeSpec spec = workload::GenerateSourceTree(1985, 70);
  std::printf("source tree: %zu files (%zu sources), %.1f KB total\n\n",
              spec.files.size(), spec.source_count(),
              static_cast<double>(spec.total_bytes()) / 1024.0);

  std::printf("%-28s %8s %8s %8s %8s %8s %9s  %6s\n", "configuration", "MakeDir", "Copy",
              "ScanDir", "ReadAll", "Make", "total(s)", "vs loc");

  // (a) Everything on the workstation's local disk.
  campus::Campus local_campus(campus::CampusConfig::Revised(1, 1));
  ITC_CHECK(local_campus.SetupRootVolume().ok());
  auto home = local_campus.AddUserWithHome("u", "pw", 0);
  auto& local_ws = local_campus.workstation(0);
  ITC_CHECK(local_ws.LoginWithPassword(home->user, "pw") == itc::Status::kOk);
  ITC_CHECK(workload::InstallSourceTree(local_ws, "/src", spec, 99) == itc::Status::kOk);
  auto local = workload::RunBenchmark5(local_ws, "/src", "/target", spec);
  ITC_CHECK(local.ok());
  const double local_s = ToSeconds(local->total);
  PrintRow("all-local (paper ~1000s)", *local, 0);

  // (b) Prototype server, cold cache — the paper's +80% measurement.
  auto proto_cold = RunRemote(campus::CampusConfig::Prototype(1, 1), spec, false);
  ITC_CHECK(proto_cold.ok());
  PrintRow("prototype, cold cache", *proto_cold, local_s);

  // (c) Prototype, warm cache: validation traffic remains.
  auto proto_warm = RunRemote(campus::CampusConfig::Prototype(1, 1), spec, true);
  ITC_CHECK(proto_warm.ok());
  PrintRow("prototype, warm cache", *proto_warm, local_s);

  // (d) Revised system (callbacks, client paths, datagram RPC, LWP server).
  auto revised_cold = RunRemote(campus::CampusConfig::Revised(1, 1), spec, false);
  ITC_CHECK(revised_cold.ok());
  PrintRow("revised, cold cache", *revised_cold, local_s);

  auto revised_warm = RunRemote(campus::CampusConfig::Revised(1, 1), spec, true);
  ITC_CHECK(revised_warm.ok());
  PrintRow("revised, warm cache", *revised_warm, local_s);

  std::printf("\nshape check: all-local lands near the paper's ~1000 s; the prototype\n"
              "cold-cache run is the paper's 'about 80%% longer'; the revised system\n"
              "cuts most of that penalty, and warm caches approach local speed.\n");
  return 0;
}
