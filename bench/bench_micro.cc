// M1 — Microbenchmarks (google-benchmark).
//
// Host-CPU cost of the primitives the system is built from: the block
// cipher and sealed envelope, the authentication handshake, wire
// serialization, CPS computation over deep group structures, path
// resolution in the local file system, directory serialization, cache
// lookups, and a full warm open through Venus. These measure the
// implementation itself (real microseconds, not the 1985 cost model).

#include <benchmark/benchmark.h>

#include "src/campus/campus.h"
#include "src/crypto/cbc.h"
#include "src/crypto/handshake.h"
#include "src/crypto/xtea.h"
#include "src/protection/protection_db.h"
#include "src/rpc/wire.h"
#include "src/unixfs/file_system.h"
#include "src/workload/zipf.h"

namespace {

using namespace itc;

void BM_XteaBlock(benchmark::State& state) {
  crypto::Key key;
  key.bytes.fill(0x42);
  uint32_t block[2] = {1, 2};
  for (auto _ : state) {
    crypto::XteaEncryptBlock(key, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_XteaBlock);

void BM_SealOpen(benchmark::State& state) {
  crypto::Key key;
  key.bytes.fill(0x17);
  Bytes payload(static_cast<size_t>(state.range(0)), 0x5a);
  uint64_t seq = 0;
  for (auto _ : state) {
    Bytes sealed = crypto::Seal(key, payload, ++seq);
    auto opened = crypto::Open(key, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SealOpen)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Handshake(benchmark::State& state) {
  const crypto::Key key = crypto::DeriveKeyFromPassword("pw", "realm");
  uint64_t nonce = 0;
  for (auto _ : state) {
    crypto::ClientHandshake client(7, key, ++nonce);
    crypto::ServerHandshake server([&key](UserId) { return std::optional(key); }, nonce);
    Bytes m1 = client.Start();
    auto m2 = server.HandleHello(m1);
    auto m3 = client.HandleChallenge(*m2);
    auto m4 = server.HandleResponse(*m3);
    auto secret = client.HandleSessionGrant(*m4);
    benchmark::DoNotOptimize(secret);
  }
}
BENCHMARK(BM_Handshake);

void BM_WireRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    rpc::Writer w;
    w.PutFid(Fid{1, 2, 3});
    w.PutU64(424242);
    w.PutString("lib/module/source.c");
    Bytes buf = w.Take();
    rpc::Reader r(buf);
    auto fid = r.FidField();
    auto v = r.U64();
    auto s = r.String();
    benchmark::DoNotOptimize(fid);
    benchmark::DoNotOptimize(v);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_WireRoundTrip);

void BM_CpsComputation(benchmark::State& state) {
  protection::ProtectionDb db;
  const auto user = *db.CreateUser("u", "pw");
  // A membership chain `depth` groups deep plus fan-out siblings.
  GroupId prev = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    GroupId g = *db.CreateGroup("g" + std::to_string(i));
    if (i == 0) {
      (void)db.AddToGroup(protection::Principal::User(user), g);
    } else {
      (void)db.AddToGroup(protection::Principal::Group(prev), g);
    }
    prev = g;
  }
  for (auto _ : state) {
    auto cps = db.CPS(user);
    benchmark::DoNotOptimize(cps);
  }
}
BENCHMARK(BM_CpsComputation)->Arg(4)->Arg(16)->Arg(64);

void BM_UnixFsResolve(benchmark::State& state) {
  unixfs::FileSystem fs;
  std::string path;
  for (int i = 0; i < 8; ++i) {
    path += "/d" + std::to_string(i);
    (void)fs.MkDir(path);
  }
  (void)fs.WriteFile(path + "/leaf", ToBytes("x"));
  const std::string target = path + "/leaf";
  for (auto _ : state) {
    auto inode = fs.Resolve(target);
    benchmark::DoNotOptimize(inode);
  }
}
BENCHMARK(BM_UnixFsResolve);

void BM_DirectorySerialize(benchmark::State& state) {
  vice::DirMap entries;
  for (int64_t i = 0; i < state.range(0); ++i) {
    entries["entry" + std::to_string(i)] =
        vice::DirItem{vice::DirItem::Kind::kFile,
                      Fid{1, static_cast<uint32_t>(i + 2), 1}, kInvalidVolume};
  }
  for (auto _ : state) {
    Bytes data = vice::SerializeDirectory(entries);
    auto parsed = vice::DeserializeDirectory(data);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_DirectorySerialize)->Arg(16)->Arg(256);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfSampler zipf(1000, 0.9);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_VenusWarmOpen(benchmark::State& state) {
  campus::Campus campus(campus::CampusConfig::Revised(1, 1));
  (void)campus.SetupRootVolume();
  auto home = campus.AddUserWithHome("u", "pw", 0);
  auto& ws = campus.workstation(0);
  (void)ws.LoginWithPassword(home->user, "pw");
  (void)ws.WriteWholeFile("/vice/usr/u/f", ToBytes("warm file"));
  (void)ws.ReadWholeFile("/vice/usr/u/f");
  for (auto _ : state) {
    auto data = ws.ReadWholeFile("/vice/usr/u/f");
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_VenusWarmOpen);

void BM_WholeFileFetch(benchmark::State& state) {
  campus::Campus campus(campus::CampusConfig::Revised(1, 1));
  (void)campus.SetupRootVolume();
  auto home = campus.AddUserWithHome("u", "pw", 0);
  (void)campus.PopulateDirect(home->volume, "/f",
                              Bytes(static_cast<size_t>(state.range(0)), 0x3c));
  auto& ws = campus.workstation(0);
  (void)ws.LoginWithPassword(home->user, "pw");
  for (auto _ : state) {
    ws.venus().FlushCache();
    auto data = ws.ReadWholeFile("/vice/usr/u/f");
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_WholeFileFetch)->Arg(4096)->Arg(65536)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
